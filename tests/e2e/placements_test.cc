// End-to-end integration across all protocol placements: TCP connect/
// transfer/close and UDP datagram exchange between two hosts, in every
// system configuration from Table 2.
#include <gtest/gtest.h>

#include <numeric>

#include "src/testbed/world.h"

namespace psd {
namespace {

class PlacementTest : public ::testing::TestWithParam<Config> {};

TEST_P(PlacementTest, UdpEcho) {
  World w(GetParam(), MachineProfile::DecStation5000());
  bool server_done = false;
  bool client_done = false;

  w.SpawnApp(1, "udp-server", [&] {
    SocketApi* api = w.api(1);
    int fd = *api->CreateSocket(IpProto::kUdp);
    ASSERT_TRUE(api->Bind(fd, SockAddrIn{Ipv4Addr::Any(), 7000}).ok());
    uint8_t buf[2048];
    SockAddrIn from;
    Result<size_t> n = api->Recv(fd, buf, sizeof(buf), &from, false);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 11u);
    EXPECT_EQ(from.addr, w.addr(0));
    Result<size_t> s = api->Send(fd, buf, *n, &from);
    ASSERT_TRUE(s.ok());
    api->Close(fd);
    server_done = true;
  });

  w.SpawnApp(0, "udp-client", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kUdp);
    SockAddrIn dst{w.addr(1), 7000};
    // Give the server a head start to bind.
    w.sim().current_thread()->SleepFor(Millis(10));
    const char* msg = "hello world";
    Result<size_t> s = api->Send(fd, reinterpret_cast<const uint8_t*>(msg), 11, &dst);
    ASSERT_TRUE(s.ok()) << ErrName(s.error());
    uint8_t buf[64];
    Result<size_t> n = api->Recv(fd, buf, sizeof(buf), nullptr, false);
    ASSERT_TRUE(n.ok()) << ErrName(n.error());
    EXPECT_EQ(*n, 11u);
    EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), *n), "hello world");
    api->Close(fd);
    client_done = true;
  });

  w.sim().Run(Seconds(30));
  EXPECT_TRUE(server_done);
  EXPECT_TRUE(client_done);
}

TEST_P(PlacementTest, TcpConnectTransferClose) {
  World w(GetParam(), MachineProfile::DecStation5000());
  constexpr size_t kTotal = 200 * 1024;
  bool server_done = false;
  bool client_done = false;

  w.SpawnApp(1, "tcp-server", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001}).ok());
    ASSERT_TRUE(api->Listen(lfd, 5).ok());
    SockAddrIn peer;
    Result<int> cfd = api->Accept(lfd, &peer);
    ASSERT_TRUE(cfd.ok()) << ErrName(cfd.error());
    EXPECT_EQ(peer.addr, w.addr(0));

    // Drain the byte stream; verify content (i mod 251) and count.
    size_t got = 0;
    uint64_t checksum = 0;
    uint8_t buf[4096];
    for (;;) {
      Result<size_t> n = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
      ASSERT_TRUE(n.ok()) << ErrName(n.error());
      if (*n == 0) {
        break;  // EOF
      }
      for (size_t i = 0; i < *n; i++) {
        EXPECT_EQ(buf[i], static_cast<uint8_t>((got + i) % 251));
        checksum += buf[i];
      }
      got += *n;
    }
    EXPECT_EQ(got, kTotal);
    api->Close(*cfd);
    api->Close(lfd);
    server_done = true;
  });

  w.SpawnApp(0, "tcp-client", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(10));
    Result<void> c = api->Connect(fd, SockAddrIn{w.addr(1), 5001});
    ASSERT_TRUE(c.ok()) << ErrName(c.error());
    std::vector<uint8_t> data(kTotal);
    for (size_t i = 0; i < data.size(); i++) {
      data[i] = static_cast<uint8_t>(i % 251);
    }
    size_t sent = 0;
    while (sent < data.size()) {
      Result<size_t> n = api->Send(fd, data.data() + sent, data.size() - sent, nullptr);
      ASSERT_TRUE(n.ok()) << ErrName(n.error());
      sent += *n;
    }
    api->Close(fd);
    client_done = true;
  });

  w.sim().Run(Seconds(120));
  EXPECT_TRUE(server_done);
  EXPECT_TRUE(client_done);
}

// An event-driven server: one PollWait interest set multiplexes the listener
// and every accepted connection, in each placement (kernel trap, UX-server
// RPC, and the library placements' cooperative-select bridge).
TEST_P(PlacementTest, PollWaitDrivenAcceptAndEcho) {
  World w(GetParam(), MachineProfile::DecStation5000());
  constexpr int kClients = 3;
  int served = 0;
  int echoed = 0;

  w.SpawnApp(1, "poll-server", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001}).ok());
    ASSERT_TRUE(api->Listen(lfd, kClients).ok());
    Result<int> pfd = api->PollCreate();
    ASSERT_TRUE(pfd.ok()) << ErrName(pfd.error());
    ASSERT_TRUE(api->PollAdd(*pfd, lfd, kPollEventIn).ok());

    int open = 0;
    std::vector<PollEvent> events;
    while (served < kClients || open > 0) {
      Result<int> n = api->PollWait(*pfd, &events, Seconds(20));
      ASSERT_TRUE(n.ok()) << ErrName(n.error());
      ASSERT_GT(*n, 0) << "poll-driven server starved";
      for (const PollEvent& ev : events) {
        if (ev.fd == lfd) {
          Result<int> cfd = api->Accept(lfd, nullptr);
          ASSERT_TRUE(cfd.ok());
          ASSERT_TRUE(api->PollAdd(*pfd, *cfd, kPollEventIn).ok());
          served++;
          open++;
          continue;
        }
        uint8_t buf[64];
        Result<size_t> got = api->Recv(ev.fd, buf, sizeof(buf), nullptr, false);
        ASSERT_TRUE(got.ok());
        if (*got == 0) {  // EOF
          api->PollRemove(*pfd, ev.fd);
          api->Close(ev.fd);
          open--;
          continue;
        }
        Result<size_t> s = api->Send(ev.fd, buf, *got, nullptr);
        ASSERT_TRUE(s.ok());
      }
    }
    api->PollClose(*pfd);
    api->Close(lfd);
  });

  for (int k = 0; k < kClients; k++) {
    w.SpawnApp(0, "cli" + std::to_string(k), [&, k] {
      SocketApi* api = w.api(0);
      int fd = *api->CreateSocket(IpProto::kTcp);
      w.sim().current_thread()->SleepFor(Millis(10 + 7 * k));
      ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
      std::string msg = "echo-" + std::to_string(k);
      ASSERT_TRUE(api->Send(fd, reinterpret_cast<const uint8_t*>(msg.data()), msg.size(),
                            nullptr).ok());
      uint8_t buf[64];
      size_t got = 0;
      while (got < msg.size()) {
        Result<size_t> n = api->Recv(fd, buf + got, sizeof(buf) - got, nullptr, false);
        ASSERT_TRUE(n.ok());
        ASSERT_GT(*n, 0u);
        got += *n;
      }
      EXPECT_EQ(std::string(buf, buf + got), msg);
      api->Close(fd);
      echoed++;
    });
  }

  w.sim().Run(Seconds(60));
  EXPECT_EQ(served, kClients);
  EXPECT_EQ(echoed, kClients);
}

TEST_P(PlacementTest, TcpConnectRefused) {
  World w(GetParam(), MachineProfile::DecStation5000());
  bool done = false;
  w.SpawnApp(0, "client", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    Result<void> c = api->Connect(fd, SockAddrIn{w.addr(1), 4242});
    ASSERT_FALSE(c.ok());
    EXPECT_EQ(c.error(), Err::kConnRefused) << ErrName(c.error());
    api->Close(fd);
    done = true;
  });
  w.sim().Run(Seconds(30));
  EXPECT_TRUE(done);
}

INSTANTIATE_TEST_SUITE_P(AllPlacements, PlacementTest,
                         ::testing::Values(Config::kInKernel, Config::kServer,
                                           Config::kLibraryIpc, Config::kLibraryShm,
                                           Config::kLibraryShmIpf),
                         [](const ::testing::TestParamInfo<Config>& info) {
                           std::string n = ConfigName(info.param);
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

}  // namespace
}  // namespace psd
