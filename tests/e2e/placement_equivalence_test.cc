// Differential testing across protocol placements: the same seeded workload
// run under the same fault plan must produce the same application-observable
// outcome in every system configuration of Table 2. Where the service lives
// (kernel, server, or library) may change timing and cost, but never what
// the application sees.
#include <gtest/gtest.h>

#include <vector>

#include "src/base/rng.h"
#include "src/obs/journey.h"
#include "src/proto/framing.h"
#include "src/proto/rpc.h"
#include "src/testbed/world.h"

namespace psd {
namespace {

constexpr Config kAllConfigs[] = {
    Config::kInKernel, Config::kServer, Config::kLibraryIpc, Config::kLibraryShm,
    Config::kLibraryShmIpf,
};

uint64_t FnvInit() { return 14695981039346656037ULL; }
void FnvAdd(uint64_t* h, const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; i++) {
    *h = (*h ^ p[i]) * 1099511628211ULL;
  }
}

struct TcpOutcome {
  bool completed = false;
  size_t bytes = 0;
  uint64_t digest = 0;
  uint64_t journey_conflicts = 0;
  uint64_t wire_in_flight = 0;
};

// One seeded TCP transfer under a lossy, delaying wire. Returns what the
// receiving application observed.
TcpOutcome RunLossyTcp(Config config, uint64_t seed) {
  PacketJourney::Get().Reset();
  DropLedger::Get().Reset();
  TcpOutcome out;
  {
    World w(config, MachineProfile::DecStation5000());
    FaultPlan plan;
    plan.loss_rate = 0.03;
    plan.delay_rate = 0.05;
    plan.extra_delay = Millis(3);
    plan.seed = seed;
    w.wire().SetFaults(plan);

    constexpr size_t kTotal = 32 * 1024;
    w.SpawnApp(1, "rx", [&] {
      SocketApi* api = w.api(1);
      int lfd = *api->CreateSocket(IpProto::kTcp);
      ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5003}).ok());
      ASSERT_TRUE(api->Listen(lfd, 5).ok());
      Result<int> cfd = api->Accept(lfd, nullptr);
      ASSERT_TRUE(cfd.ok());
      uint8_t buf[4096];
      uint64_t h = FnvInit();
      for (;;) {
        Result<size_t> n = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
        ASSERT_TRUE(n.ok()) << ErrName(n.error());
        if (*n == 0) {
          break;
        }
        FnvAdd(&h, buf, *n);
        out.bytes += *n;
      }
      out.digest = h;
      api->Close(*cfd);
      api->Close(lfd);
      out.completed = true;
    });
    w.SpawnApp(0, "tx", [&] {
      SocketApi* api = w.api(0);
      int fd = *api->CreateSocket(IpProto::kTcp);
      w.sim().current_thread()->SleepFor(Millis(10));
      ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5003}).ok());
      Rng content = Rng::Stream(seed, 1000);
      std::vector<uint8_t> data(kTotal);
      for (uint8_t& b : data) {
        b = static_cast<uint8_t>(content.Below(256));
      }
      size_t sent = 0;
      while (sent < data.size()) {
        Result<size_t> n = api->Send(fd, data.data() + sent, data.size() - sent, nullptr);
        ASSERT_TRUE(n.ok()) << ErrName(n.error());
        sent += *n;
      }
      api->Close(fd);
    });
    w.sim().Run(Seconds(300));
  }
  out.journey_conflicts = PacketJourney::Get().conflicts();
  out.wire_in_flight = PacketJourney::Get().in_flight();
  return out;
}

// Every placement delivers the identical byte stream — same length, same
// digest — and keeps the journey books clean, even though each placement
// sees different frame timing and different retransmission patterns.
TEST(PlacementEquivalence, LossyTcpStreamIsIdenticalEverywhere) {
  constexpr uint64_t kSeed = 20260806;

  // Reference digest, computed straight from the seeded generator.
  Rng content = Rng::Stream(kSeed, 1000);
  uint64_t want = FnvInit();
  for (size_t i = 0; i < 32 * 1024; i++) {
    uint8_t b = static_cast<uint8_t>(content.Below(256));
    FnvAdd(&want, &b, 1);
  }

  for (Config c : kAllConfigs) {
    TcpOutcome got = RunLossyTcp(c, kSeed);
    EXPECT_TRUE(got.completed) << ConfigName(c);
    EXPECT_EQ(got.bytes, 32u * 1024) << ConfigName(c);
    EXPECT_EQ(got.digest, want) << ConfigName(c);
    EXPECT_EQ(got.journey_conflicts, 0u) << ConfigName(c);
    EXPECT_EQ(got.wire_in_flight, 0u) << ConfigName(c);
  }
}

// On a fault-free wire, UDP is a deterministic transport in this simulator:
// every placement must deliver all datagrams, intact and in send order.
TEST(PlacementEquivalence, CleanUdpSequenceIsIdenticalEverywhere) {
  constexpr int kCount = 40;
  constexpr size_t kPayload = 128;
  std::vector<std::vector<uint8_t>> sequences;  // first byte of each datagram

  for (Config c : kAllConfigs) {
    PacketJourney::Get().Reset();
    DropLedger::Get().Reset();
    std::vector<uint8_t> seq_tags;
    int intact = 0;
    {
      World w(c, MachineProfile::DecStation5000());
      bool tx_done = false;
      w.SpawnApp(1, "rx", [&] {
        SocketApi* api = w.api(1);
        int fd = *api->CreateSocket(IpProto::kUdp);
        ASSERT_TRUE(api->Bind(fd, SockAddrIn{Ipv4Addr::Any(), 9001}).ok());
        uint8_t buf[1024];
        for (;;) {
          SelectFds fds;
          fds.read.push_back(fd);
          Result<int> sel = api->Select(&fds, Millis(200));
          if (!sel.ok() || *sel == 0) {
            if (tx_done) {
              break;
            }
            continue;
          }
          Result<size_t> n = api->Recv(fd, buf, sizeof(buf), nullptr, false);
          ASSERT_TRUE(n.ok());
          ASSERT_EQ(*n, kPayload);
          seq_tags.push_back(buf[0]);
          Rng r = Rng::Stream(4242, buf[0]);
          bool ok = true;
          for (size_t i = 1; i < kPayload; i++) {
            ok = ok && buf[i] == static_cast<uint8_t>(r.Below(256));
          }
          intact += ok ? 1 : 0;
        }
        api->Close(fd);
      });
      w.SpawnApp(0, "tx", [&] {
        SocketApi* api = w.api(0);
        int fd = *api->CreateSocket(IpProto::kUdp);
        SockAddrIn dst{w.addr(1), 9001};
        w.sim().current_thread()->SleepFor(Millis(10));
        for (int i = 0; i < kCount; i++) {
          uint8_t p[kPayload];
          p[0] = static_cast<uint8_t>(i);
          Rng r = Rng::Stream(4242, static_cast<uint64_t>(i));
          for (size_t j = 1; j < kPayload; j++) {
            p[j] = static_cast<uint8_t>(r.Below(256));
          }
          ASSERT_TRUE(api->Send(fd, p, kPayload, &dst).ok());
          w.sim().current_thread()->SleepFor(Millis(3));
        }
        api->Close(fd);
        tx_done = true;
      });
      w.sim().Run(Seconds(30));
    }
    EXPECT_EQ(seq_tags.size(), static_cast<size_t>(kCount)) << ConfigName(c);
    EXPECT_EQ(intact, kCount) << ConfigName(c);
    sequences.push_back(seq_tags);
  }

  // Differential: all five placements saw the exact same arrival sequence.
  for (size_t i = 1; i < sequences.size(); i++) {
    EXPECT_EQ(sequences[i], sequences[0]) << ConfigName(kAllConfigs[i]);
  }
}

struct RpcTranscript {
  bool completed = false;
  uint64_t client_digest = 0;  // every response message, arrival order
  uint64_t server_digest = 0;  // every request message, arrival order
  uint64_t served = 0;
};

// Framed RPC (length-prefix framing + pipelined request/response) over a
// lossy wire. Both ends digest every whole message they receive; TCP's
// ordering guarantee makes those transcripts placement-independent even
// though retransmission patterns differ.
RpcTranscript RunFramedRpc(Config config, uint64_t seed) {
  RpcTranscript out;
  constexpr int kCalls = 24;
  constexpr int kWindow = 6;
  constexpr size_t kMaxPayload = 300;
  World w(config, MachineProfile::DecStation5000());
  FaultPlan plan;
  plan.loss_rate = 0.02;
  plan.delay_rate = 0.05;
  plan.extra_delay = Millis(2);
  plan.seed = seed;
  w.wire().SetFaults(plan);

  w.SpawnApp(1, "rpcsrv", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5004}).ok());
    ASSERT_TRUE(api->Listen(lfd, 1).ok());
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    SockByteStream bs(api, *cfd);
    PfxStream pfx(&bs, 4096);
    std::vector<uint8_t> msg(kRpcHeaderLen + kMaxPayload);
    uint64_t h = FnvInit();
    for (;;) {
      Result<size_t> n = pfx.RecvMsg(msg.data(), msg.size());
      if (!n.ok()) {
        ASSERT_EQ(n.error(), Err::kEof) << ErrName(n.error());
        break;
      }
      ASSERT_GE(*n, kRpcHeaderLen);
      ASSERT_EQ(msg[8], kRpcRequest);
      FnvAdd(&h, msg.data(), *n);
      for (size_t i = kRpcHeaderLen; i < *n; i++) {
        msg[i] ^= kRpcTransform;
      }
      msg[8] = kRpcResponse;
      ASSERT_TRUE(pfx.SendMsg(msg.data(), *n).ok());
      out.served++;
    }
    out.server_digest = h;
    api->Close(*cfd);
    api->Close(lfd);
  });
  w.SpawnApp(0, "rpccli", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(10));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5004}).ok());
    SockByteStream bs(api, fd);
    PfxStream pfx(&bs, 4096);
    std::vector<uint8_t> req(kRpcHeaderLen + kMaxPayload);
    std::vector<uint8_t> resp(kRpcHeaderLen + kMaxPayload);
    uint64_t h = FnvInit();
    int outstanding = 0;
    uint64_t got = 0;
    auto recv_one = [&] {
      Result<size_t> n = pfx.RecvMsg(resp.data(), resp.size());
      ASSERT_TRUE(n.ok()) << ErrName(n.error());
      FnvAdd(&h, resp.data(), *n);
      outstanding--;
      got++;
    };
    for (int i = 0; i < kCalls; i++) {
      while (outstanding >= kWindow) {
        recv_one();
      }
      Rng gen = Rng::Stream(seed, 500 + static_cast<uint64_t>(i));
      size_t len = gen.Below(kMaxPayload + 1);
      for (int b = 0; b < 8; b++) {
        req[b] = static_cast<uint8_t>(static_cast<uint64_t>(i) >> (8 * b));
      }
      req[8] = kRpcRequest;
      for (size_t b = 0; b < len; b++) {
        req[kRpcHeaderLen + b] = static_cast<uint8_t>(gen.Next());
      }
      ASSERT_TRUE(pfx.SendMsg(req.data(), kRpcHeaderLen + len).ok());
      outstanding++;
    }
    while (outstanding > 0) {
      recv_one();
    }
    out.client_digest = h;
    out.completed = got == kCalls;
    api->Close(fd);
  });
  w.sim().Run(Seconds(300));
  return out;
}

// The full framed-RPC transcript — every request the server parsed and every
// response the client parsed, in order — is identical across all five
// placements under the same lossy fault plan.
TEST(PlacementEquivalence, FramedRpcTranscriptIsIdenticalEverywhere) {
  constexpr uint64_t kSeed = 20260808;
  std::vector<RpcTranscript> transcripts;
  for (Config c : kAllConfigs) {
    RpcTranscript t = RunFramedRpc(c, kSeed);
    EXPECT_TRUE(t.completed) << ConfigName(c);
    EXPECT_EQ(t.served, 24u) << ConfigName(c);
    transcripts.push_back(t);
  }
  for (size_t i = 1; i < transcripts.size(); i++) {
    EXPECT_EQ(transcripts[i].client_digest, transcripts[0].client_digest)
        << ConfigName(kAllConfigs[i]);
    EXPECT_EQ(transcripts[i].server_digest, transcripts[0].server_digest)
        << ConfigName(kAllConfigs[i]);
  }
}

}  // namespace
}  // namespace psd
