#include <gtest/gtest.h>

#include "src/cost/machine_profile.h"
#include "src/ipc/port.h"

namespace psd {
namespace {

class PortTest : public ::testing::Test {
 protected:
  Simulator sim;
  HostCpu cpu;
  MachineProfile prof = MachineProfile::DecStation5000();
};

TEST_F(PortTest, SendReceiveRoundTrip) {
  Port port(&sim, &prof, "p");
  IpcMessage got;
  bool received = false;
  sim.Spawn("rx", &cpu, [&] {
    received = port.Receive(&got);
  });
  sim.Spawn("tx", &cpu, [&] {
    IpcMessage msg;
    msg.kind = 42;
    msg.arg[1] = 7;
    msg.payload = {1, 2, 3};
    port.Send(std::move(msg));
  });
  sim.Run();
  ASSERT_TRUE(received);
  EXPECT_EQ(got.kind, 42u);
  EXPECT_EQ(got.arg[1], 7u);
  EXPECT_EQ(got.payload, (std::vector<uint8_t>{1, 2, 3}));
}

TEST_F(PortTest, MessagesQueueInOrder) {
  Port port(&sim, &prof, "p");
  std::vector<uint32_t> kinds;
  sim.Spawn("tx", &cpu, [&] {
    for (uint32_t i = 0; i < 5; i++) {
      IpcMessage m;
      m.kind = i;
      port.Send(std::move(m));
    }
  });
  sim.Spawn("rx", &cpu, [&] {
    IpcMessage m;
    for (int i = 0; i < 5; i++) {
      if (port.Receive(&m)) {
        kinds.push_back(m.kind);
      }
    }
  });
  sim.Run();
  EXPECT_EQ(kinds, (std::vector<uint32_t>{0, 1, 2, 3, 4}));
}

TEST_F(PortTest, ReceiveTimesOut) {
  Port port(&sim, &prof, "p");
  bool got = true;
  sim.Spawn("rx", &cpu, [&] {
    IpcMessage m;
    got = port.Receive(&m, sim.Now() + Millis(2));
  });
  sim.Run();
  EXPECT_FALSE(got);
}

TEST_F(PortTest, TransferChargesVirtualTime) {
  Port port(&sim, &prof, "p");
  SimTime rx_done = 0;
  sim.Spawn("rx", &cpu, [&] {
    IpcMessage m;
    port.Receive(&m);
    rx_done = sim.Now();
  });
  sim.Spawn("tx", &cpu, [&] {
    IpcMessage m;
    m.payload.assign(1000, 0xab);
    port.Send(std::move(m));
  });
  sim.Run();
  // At least the fixed send+receive cost plus 2 x 1000 bytes of copies.
  SimDuration floor = prof.ipc_fixed + 2000 * prof.ipc_per_byte;
  EXPECT_GE(rx_done, floor);
}

TEST_F(PortTest, CompetingReceiversEachGetOneMessage) {
  // Regression: a receiver must dequeue before charging, or a second
  // receiver can claim the same message (server worker pools).
  Port port(&sim, &prof, "p");
  int delivered = 0;
  for (int i = 0; i < 2; i++) {
    sim.Spawn("rx" + std::to_string(i), &cpu, [&] {
      IpcMessage m;
      if (port.Receive(&m, sim.Now() + Seconds(1))) {
        delivered++;
      }
    });
  }
  sim.Spawn("tx", &cpu, [&] {
    for (int i = 0; i < 2; i++) {
      IpcMessage m;
      m.kind = static_cast<uint32_t>(i);
      m.payload.assign(500, 1);
      port.Send(std::move(m));
    }
  });
  sim.Run();
  EXPECT_EQ(delivered, 2);
}

TEST_F(PortTest, RpcCallRoundTrip) {
  Port server(&sim, &prof, "server");
  sim.Spawn("server", &cpu, [&] {
    IpcMessage req;
    while (server.Receive(&req, sim.Now() + Seconds(1))) {
      IpcMessage rep;
      rep.arg[1] = req.arg[1] * 2;
      req.reply_port->Send(std::move(rep));
    }
  });
  uint64_t answer = 0;
  sim.Spawn("client", &cpu, [&] {
    Port reply(&sim, &prof, "reply");
    IpcMessage req;
    req.arg[1] = 21;
    IpcMessage rep = RpcCall(&server, &reply, std::move(req));
    answer = rep.arg[1];
  });
  sim.Run();
  EXPECT_EQ(answer, 42u);
}

}  // namespace
}  // namespace psd
