#include <gtest/gtest.h>

#include <vector>

#include "src/obs/probe.h"
#include "src/sim/simulator.h"

namespace psd {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(Micros(30), [&] { order.push_back(3); });
  sim.Schedule(Micros(10), [&] { order.push_back(1); });
  sim.Schedule(Micros(20), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), Micros(30));
}

TEST(Simulator, EqualTimesRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; i++) {
    sim.Schedule(Micros(5), [&, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  bool ran = false;
  sim.Schedule(Seconds(5), [&] { ran = true; });
  sim.Run(Seconds(1));
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.Now(), Seconds(1));
  sim.Run(Seconds(10));
  EXPECT_TRUE(ran);
}

TEST(SimThread, ChargeAdvancesVirtualTime) {
  Simulator sim;
  HostCpu cpu;
  SimTime after = 0;
  sim.Spawn("t", &cpu, [&] {
    sim.current_thread()->Charge(Micros(100));
    after = sim.Now();
  });
  sim.Run();
  EXPECT_EQ(after, Micros(100));
  EXPECT_EQ(cpu.busy(), Micros(100));
}

TEST(SimThread, CpuSerializesConcurrentCharges) {
  // Two threads each burn 100us on one CPU: total virtual time 200us.
  Simulator sim;
  HostCpu cpu;
  SimTime t1 = 0, t2 = 0;
  sim.Spawn("a", &cpu, [&] {
    sim.current_thread()->Charge(Micros(100));
    t1 = sim.Now();
  });
  sim.Spawn("b", &cpu, [&] {
    sim.current_thread()->Charge(Micros(100));
    t2 = sim.Now();
  });
  sim.Run();
  EXPECT_EQ(std::max(t1, t2), Micros(200));
}

TEST(SimThread, SeparateCpusRunInParallel) {
  Simulator sim;
  HostCpu cpu_a, cpu_b;
  SimTime t1 = 0, t2 = 0;
  sim.Spawn("a", &cpu_a, [&] {
    sim.current_thread()->Charge(Micros(100));
    t1 = sim.Now();
  });
  sim.Spawn("b", &cpu_b, [&] {
    sim.current_thread()->Charge(Micros(100));
    t2 = sim.Now();
  });
  sim.Run();
  EXPECT_EQ(t1, Micros(100));
  EXPECT_EQ(t2, Micros(100));
}

TEST(SimThread, WaitAndNotify) {
  Simulator sim;
  HostCpu cpu;
  WaitQueue q(&sim);
  SimTime woken_at = 0;
  sim.Spawn("waiter", &cpu, [&] {
    sim.current_thread()->WaitOn(&q);
    woken_at = sim.Now();
  });
  sim.Spawn("waker", &cpu, [&] {
    sim.current_thread()->SleepFor(Millis(3));
    q.NotifyOne();
  });
  sim.Run();
  EXPECT_EQ(woken_at, Millis(3));
}

TEST(SimThread, WaitTimeout) {
  Simulator sim;
  HostCpu cpu;
  WaitQueue q(&sim);
  bool notified = true;
  sim.Spawn("waiter", &cpu, [&] {
    notified = sim.current_thread()->WaitOn(&q, sim.Now() + Millis(5));
  });
  sim.Run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(sim.Now(), Millis(5));
}

TEST(SimThread, NotifyBeatsTimeout) {
  Simulator sim;
  HostCpu cpu;
  WaitQueue q(&sim);
  bool notified = false;
  SimTime woke_at = 0;
  sim.Spawn("waiter", &cpu, [&] {
    notified = sim.current_thread()->WaitOn(&q, sim.Now() + Millis(50));
    woke_at = sim.Now();
  });
  sim.Schedule(Millis(1), [&] { q.NotifyOne(); });
  sim.Run();
  EXPECT_TRUE(notified);
  EXPECT_EQ(woke_at, Millis(1));
}

TEST(SimMutex, MutualExclusion) {
  Simulator sim;
  HostCpu cpu;
  SimMutex mu(&sim);
  int in_critical = 0;
  int max_in_critical = 0;
  for (int i = 0; i < 3; i++) {
    sim.Spawn("t" + std::to_string(i), &cpu, [&] {
      mu.Lock();
      in_critical++;
      max_in_critical = std::max(max_in_critical, in_critical);
      sim.current_thread()->Charge(Micros(50));  // yields while holding
      in_critical--;
      mu.Unlock();
    });
  }
  sim.Run();
  EXPECT_EQ(max_in_critical, 1);
}

TEST(SimCondition, WaitReleasesMutex) {
  Simulator sim;
  HostCpu cpu;
  SimMutex mu(&sim);
  SimCondition cv(&sim);
  bool consumed = false;
  sim.Spawn("consumer", &cpu, [&] {
    mu.Lock();
    cv.Wait(&mu);
    consumed = true;
    mu.Unlock();
  });
  sim.Spawn("producer", &cpu, [&] {
    sim.current_thread()->SleepFor(Millis(1));
    mu.Lock();  // succeeds because the consumer's Wait released it
    cv.NotifyOne();
    mu.Unlock();
  });
  sim.Run();
  EXPECT_TRUE(consumed);
}

TEST(Simulator, KillThreadUnwinds) {
  Simulator sim;
  HostCpu cpu;
  WaitQueue q(&sim);
  bool finished_normally = false;
  SimThread* t = sim.Spawn("stuck", &cpu, [&] {
    sim.current_thread()->WaitOn(&q);
    finished_normally = true;  // unreached: the wait never completes
  });
  sim.Run();
  EXPECT_FALSE(t->finished());
  sim.KillThread(t);
  EXPECT_TRUE(t->finished());
  EXPECT_FALSE(finished_normally);
  EXPECT_TRUE(q.empty()) << "killed thread must not linger in wait queues";
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run = [] {
    Simulator sim;
    HostCpu a, b;
    uint64_t trace = 0;
    WaitQueue q(&sim);
    sim.Spawn("x", &a, [&] {
      for (int i = 0; i < 10; i++) {
        sim.current_thread()->Charge(Micros(7));
        trace = trace * 31 + static_cast<uint64_t>(sim.Now());
        q.NotifyOne();
      }
    });
    sim.Spawn("y", &b, [&] {
      for (int i = 0; i < 5; i++) {
        sim.current_thread()->WaitOn(&q, sim.Now() + Micros(13));
        trace = trace * 37 + static_cast<uint64_t>(sim.Now());
      }
    });
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run(), run());
}

TEST(Probe, NestedSpansExcludeChildren) {
  Simulator sim;
  HostCpu cpu;
  Tracer tracer;
  StageRecorder rec;
  tracer.AddSink(&rec);
  sim.Spawn("t", &cpu, [&] {
    ProbeSpan outer(&tracer, &sim, Stage::kEntryCopyin);
    sim.current_thread()->Charge(Micros(10));
    {
      ProbeSpan inner(&tracer, &sim, Stage::kProtoOutput);
      sim.current_thread()->Charge(Micros(25));
    }
    sim.current_thread()->Charge(Micros(5));
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(rec.cell(Stage::kEntryCopyin).MeanMicros(), 15.0);
  EXPECT_DOUBLE_EQ(rec.cell(Stage::kProtoOutput).MeanMicros(), 25.0);
}

TEST(Probe, ConditionalSpanNotRecordedUnlessCommitted) {
  Simulator sim;
  HostCpu cpu;
  Tracer tracer;
  StageRecorder rec;
  tracer.AddSink(&rec);
  sim.Spawn("t", &cpu, [&] {
    {
      ProbeSpan s(&tracer, &sim, Stage::kProtoOutput);
      s.MarkConditional();
      sim.current_thread()->Charge(Micros(10));
    }
    {
      ProbeSpan s(&tracer, &sim, Stage::kProtoOutput);
      s.MarkConditional();
      sim.current_thread()->Charge(Micros(20));
      s.Commit();
    }
  });
  sim.Run();
  EXPECT_EQ(rec.cell(Stage::kProtoOutput).count, 1u);
  EXPECT_DOUBLE_EQ(rec.cell(Stage::kProtoOutput).MeanMicros(), 20.0);
}

}  // namespace
}  // namespace psd
