// Scheduler-focused regression tests: timer-wheel ordering across levels
// (page crossings, overflow pull-back, cursor rewind), past-time clamping,
// wait-queue intrusive-list integrity, and a randomized wheel-vs-heap
// differential. The determinism A/B harness (determinism_ab_test.cc) covers
// whole-system equivalence; these pin down the scheduler primitives the
// equivalence rests on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/timer_wheel.h"

namespace psd {
namespace {

// L0 spans 2^(12+10) ns = ~4.19 ms; L1 spans ~4.29 s.
constexpr SimTime kL0Span = 1ll << (TimerWheel::kSlotBits + TimerWheel::kWheelBits);
constexpr SimTime kL1Span = kL0Span << TimerWheel::kWheelBits;

TEST(TimerWheel, OrderingAcrossAllLevels) {
  // Times land in L0, L1 and the overflow list, inserted in shuffled order;
  // execution must come back globally sorted with ties in schedule order.
  Simulator sim;
  std::vector<SimTime> times;
  for (int i = 0; i < 64; i++) {
    times.push_back(Micros(1) + i * (kL0Span / 97));         // within L0
    times.push_back(kL0Span + i * (kL1Span / 131));          // within L1
    times.push_back(kL1Span + Seconds(1) + i * Millis(37));  // overflow
  }
  std::mt19937 rng(42);
  std::shuffle(times.begin(), times.end(), rng);

  std::vector<SimTime> fired;
  for (SimTime t : times) {
    sim.Schedule(t, [&fired, &sim] { fired.push_back(sim.Now()); });
  }
  sim.Run();

  std::sort(times.begin(), times.end());
  EXPECT_EQ(fired, times);
}

TEST(TimerWheel, PageCrossingInsertWhileRunning) {
  // Regression: events scheduled from inside an event near an L0 page
  // boundary must cascade correctly into the freshly-advanced page instead
  // of landing behind the scan cursor.
  Simulator sim;
  std::vector<int> order;
  const SimTime near_edge = kL0Span - Micros(2);
  sim.Schedule(near_edge, [&] {
    order.push_back(1);
    // Crosses into the next L0 page relative to the current cursor.
    sim.Schedule(kL0Span + Micros(2), [&] { order.push_back(3); });
    // Same page, later slot.
    sim.Schedule(near_edge + Micros(1), [&] { order.push_back(2); });
  });
  sim.Schedule(kL0Span + Micros(5), [&] { order.push_back(4); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(TimerWheel, OverflowPulledBackInPagePortions) {
  // Long protocol-timer territory: events far past the L1 horizon must be
  // pulled back and still interleave exactly with near-term events
  // scheduled later.
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(kL1Span + Seconds(3), [&] { order.push_back(4); });
  sim.Schedule(kL1Span + Seconds(2), [&] {
    order.push_back(2);
    // Scheduled from deep-future context; lands after this instant.
    sim.Schedule(sim.Now() + Micros(1), [&] { order.push_back(3); });
  });
  sim.Schedule(Millis(1), [&] { order.push_back(1); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(TimerWheel, RewindAfterIdleGap) {
  // Run(until) walks the scan cursor far ahead across an idle stretch; a
  // later insert behind the cursor (but after Now()) must rewind it.
  Simulator sim;
  sim.Run(Seconds(2));  // no events: cursor may advance arbitrarily
  ASSERT_EQ(sim.Now(), Seconds(2));
  bool ran = false;
  sim.Schedule(Seconds(2) + Micros(3), [&] { ran = true; });
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.Now(), Seconds(2) + Micros(3));
}

TEST(Simulator, PastTimeScheduleClampsToNow) {
  // Scheduling behind the clock clamps to Now() and runs in schedule order
  // after everything already queued at this instant — and is counted, since
  // a past-time schedule is almost always a component bug worth surfacing.
  Simulator sim;
  std::vector<int> order;
  ASSERT_EQ(sim.past_time_clamps(), 0u);
  sim.Schedule(Millis(1), [&] {
    sim.Schedule(sim.Now(), [&] { order.push_back(1); });    // queued at now
    sim.Schedule(sim.Now() - Micros(500), [&] {              // the clamp
      order.push_back(2);
      EXPECT_EQ(sim.Now(), Millis(1));
    });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.past_time_clamps(), 1u);
  EXPECT_EQ(sim.Now(), Millis(1));
}

TEST(WaitQueue, TimeoutRemovesFromMiddleOfQueue) {
  // Three waiters; the middle one times out first. The intrusive list must
  // unlink it cleanly and keep FIFO order for the survivors.
  Simulator sim;
  HostCpu cpu;
  WaitQueue q(&sim);
  std::vector<int> woken;
  auto waiter = [&](int id, SimTime deadline) {
    sim.Spawn("w" + std::to_string(id), &cpu, [&, id, deadline] {
      bool notified = sim.current_thread()->WaitOn(&q, deadline);
      woken.push_back(notified ? id : -id);
    });
  };
  waiter(1, kTimeNever);
  waiter(2, Millis(1));  // times out before the notify below
  waiter(3, kTimeNever);
  sim.Schedule(Millis(5), [&] { q.NotifyAll(); });
  sim.Run();
  EXPECT_EQ(woken, (std::vector<int>{-2, 1, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(WaitQueue, NotifyInvalidatesPendingTimeout) {
  // A notify before the deadline must cancel the timeout event: when the
  // stale event fires, the thread may already be waiting again.
  Simulator sim;
  HostCpu cpu;
  WaitQueue q(&sim);
  std::vector<bool> results;
  sim.Spawn("w", &cpu, [&] {
    results.push_back(sim.current_thread()->WaitOn(&q, sim.Now() + Millis(2)));
    results.push_back(sim.current_thread()->WaitOn(&q, sim.Now() + Millis(10)));
  });
  sim.Schedule(Millis(1), [&] { q.NotifyOne(); });  // beats the 2ms deadline
  sim.Schedule(Millis(4), [&] { q.NotifyOne(); });  // after the stale event
  sim.Run();
  EXPECT_EQ(results, (std::vector<bool>{true, true}));
}

// Runs a seeded random scheduling workload (timers at mixed horizons, some
// rescheduling from event context) and returns the execution-order digest.
uint64_t RandomWorkloadDigest(uint64_t seed) {
  Simulator sim;
  std::mt19937_64 rng(seed);
  uint64_t digest = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&digest](uint64_t v) {
    digest = (digest ^ v) * 1099511628211ull;
  };
  std::function<void(int)> chain = [&](int depth) {
    mix(static_cast<uint64_t>(sim.Now()));
    if (depth > 0) {
      int fan = 1 + static_cast<int>(rng() % 3);
      for (int i = 0; i < fan; i++) {
        SimTime dt = static_cast<SimTime>(rng() % static_cast<uint64_t>(kL0Span * 3));
        sim.Schedule(sim.Now() + dt, [&, depth] { chain(depth - 1); });
      }
    }
  };
  for (int i = 0; i < 32; i++) {
    SimTime t = static_cast<SimTime>(rng() % static_cast<uint64_t>(Seconds(6)));
    sim.Schedule(t, [&] { chain(3); });
  }
  sim.Run();
  mix(sim.events_executed());
  return digest;
}

TEST(Scheduler, WheelMatchesHeapOnRandomWorkload) {
  // Differential check of the two backends over workloads that straddle
  // every wheel level. PSD_SIM_HEAP_SCHEDULER is read at Simulator
  // construction, so flipping it between runs selects the backend.
  for (uint64_t seed : {1ull, 7ull, 1993ull}) {
    unsetenv("PSD_SIM_HEAP_SCHEDULER");
    uint64_t wheel = RandomWorkloadDigest(seed);
    setenv("PSD_SIM_HEAP_SCHEDULER", "1", 1);
    uint64_t heap = RandomWorkloadDigest(seed);
    unsetenv("PSD_SIM_HEAP_SCHEDULER");
    EXPECT_EQ(wheel, heap) << "backends diverged for seed " << seed;
  }
}

}  // namespace
}  // namespace psd
