// Differential proof that the timer-wheel scheduler is observation-
// equivalent to the legacy heap scheduler: every torture scenario, on every
// placement, under several seeds, must produce a byte-identical report
// (stream digests, journey/wire counters, events-executed) and a byte-
// identical pktwalk of every packet's life when run under either backend.
//
// The heap backend is selected with PSD_SIM_HEAP_SCHEDULER, read at
// Simulator construction; RunTorture builds a fresh World (and Simulator)
// per call, so flipping the variable between calls flips the backend.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "src/obs/journey.h"
#include "src/obs/prof.h"
#include "src/testbed/torture.h"

namespace psd {
namespace {

struct AbRun {
  TortureResult result;
  std::string pktwalk;
};

AbRun RunWithBackend(bool heap, Config config, const TortureSpec& spec, uint64_t seed) {
  if (heap) {
    setenv("PSD_SIM_HEAP_SCHEDULER", "1", 1);
  } else {
    unsetenv("PSD_SIM_HEAP_SCHEDULER");
  }
  AbRun out;
  out.result = RunTorture(config, spec, seed);
  // RunTorture leaves the run's journey records in the singletons; the
  // pktwalk is the finest-grained observable — per-packet hop sequences
  // with virtual timestamps.
  out.pktwalk = PktwalkText(PktwalkFilter{});
  unsetenv("PSD_SIM_HEAP_SCHEDULER");
  return out;
}

void CheckConfig(Config config) {
  // The host profiler stays attached across the whole matrix. Its hooks
  // read the host clock and write profiler-private arrays only, so every
  // report below must still be byte-identical — this is the
  // zero-perturbation proof promised in src/obs/prof.h. (In
  // PSD_OBS_DISABLE_PROF builds Start/Stop are no-op stubs.)
  HostProfiler::Get().Start();
  for (uint64_t seed : {1ull, 7ull, 1993ull}) {
    for (const TortureSpec& spec : TortureScenarios()) {
      AbRun wheel = RunWithBackend(false, config, spec, seed);
      AbRun heap = RunWithBackend(true, config, spec, seed);
      EXPECT_TRUE(wheel.result.passed)
          << spec.name << " seed " << seed << ":\n" << wheel.result.report;
      EXPECT_EQ(wheel.result.report, heap.result.report)
          << "backends diverged: " << spec.name << " seed " << seed;
      EXPECT_EQ(wheel.pktwalk, heap.pktwalk)
          << "pktwalk diverged: " << spec.name << " seed " << seed;
    }
  }
  HostProfiler::Get().Stop();
}

TEST(DeterminismAB, InKernel) { CheckConfig(Config::kInKernel); }
TEST(DeterminismAB, Server) { CheckConfig(Config::kServer); }
TEST(DeterminismAB, LibraryIpc) { CheckConfig(Config::kLibraryIpc); }
TEST(DeterminismAB, LibraryShm) { CheckConfig(Config::kLibraryShm); }
TEST(DeterminismAB, LibraryShmIpf) { CheckConfig(Config::kLibraryShmIpf); }

}  // namespace
}  // namespace psd
