// TCP state-machine details beyond the happy path: TIME_WAIT and its 2MSL
// reuse, RST on data to a closed port, zero-window persist probes, keepalive
// against a dead peer, Nagle vs TCP_NODELAY, and sequence-space arithmetic.
#include <gtest/gtest.h>

#include "src/testbed/world.h"

namespace psd {
namespace {

TEST(SeqArith, WrapsCorrectly) {
  EXPECT_TRUE(SeqLt(0xfffffff0u, 0x10u));  // across the wrap
  EXPECT_TRUE(SeqGt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(SeqLeq(5u, 5u));
  EXPECT_TRUE(SeqGeq(5u, 5u));
  EXPECT_FALSE(SeqLt(5u, 5u));
}

class TcpStateTest : public ::testing::Test {
 protected:
  TcpStateTest() : w(Config::kInKernel, MachineProfile::DecStation5000()) {}

  // Finds the first pcb on host `i` in the given state, else nullptr.
  TcpPcb* FindPcb(int i, TcpState state) {
    for (const auto& p : w.kernel_node(i)->stack()->tcp().pcbs()) {
      if (p->state == state) {
        return p.get();
      }
    }
    return nullptr;
  }

  World w;
};

TEST_F(TcpStateTest, ActiveCloserEntersTimeWait) {
  bool closed = false;
  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 1);
    Result<int> cfd = api->Accept(lfd, nullptr);
    if (cfd.ok()) {
      uint8_t b[4];
      api->Recv(*cfd, b, sizeof(b), nullptr, false);  // wait for EOF
      api->Close(*cfd);
    }
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(5));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
    api->Close(fd);  // active close: this side owes TIME_WAIT
    closed = true;
  });
  w.sim().RunFor(Seconds(3));
  ASSERT_TRUE(closed);
  // The active closer's pcb sits in TIME_WAIT...
  EXPECT_NE(FindPcb(0, TcpState::kTimeWait), nullptr);
  // ...and is reaped after 2MSL (60 s) plus a timer tick.
  w.sim().RunFor(Seconds(70));
  EXPECT_EQ(FindPcb(0, TcpState::kTimeWait), nullptr);
  EXPECT_TRUE(w.kernel_node(0)->stack()->tcp().pcbs().empty());
}

TEST_F(TcpStateTest, TimeWaitTupleIsReusableByNewSyn) {
  // A fresh connection from the same 4-tuple during TIME_WAIT succeeds
  // when its initial sequence is beyond the old incarnation's.
  int accepted = 0;
  w.SpawnApp(1, "srv", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 2);
    for (int i = 0; i < 2; i++) {
      Result<int> cfd = api->Accept(lfd, nullptr);
      if (!cfd.ok()) {
        return;
      }
      accepted++;
      uint8_t b[4];
      api->Recv(*cfd, b, sizeof(b), nullptr, false);  // the client's 1 byte
      api->Close(*cfd);  // server actively closes -> server-side TIME_WAIT
    }
  });
  w.SpawnApp(0, "cli", [&] {
    SocketApi* api = w.api(0);
    for (int i = 0; i < 2; i++) {
      int fd = *api->CreateSocket(IpProto::kTcp);
      // Same client port both times: the second SYN hits the server's
      // TIME_WAIT pcb for the identical tuple.
      w.sim().current_thread()->SleepFor(Millis(10));
      Result<void> bound = api->Bind(fd, SockAddrIn{Ipv4Addr::Any(), 30000});
      ASSERT_TRUE(bound.ok()) << ErrName(bound.error());
      Result<void> c = api->Connect(fd, SockAddrIn{w.addr(1), 5001});
      ASSERT_TRUE(c.ok()) << "connection " << i << ": " << ErrName(c.error());
      uint8_t b[4] = {0x42};
      api->Send(fd, b, 1, nullptr);
      api->Recv(fd, b, sizeof(b), nullptr, false);  // EOF: server closed first
      api->Close(fd);  // passive close: no client-side TIME_WAIT
      // Wait for LAST_ACK to finish and the pcb (and port name) to be
      // reaped before rebinding the same port.
      w.sim().current_thread()->SleepFor(Seconds(3));
    }
  });
  w.sim().Run(Seconds(120));
  EXPECT_EQ(accepted, 2);
}

TEST_F(TcpStateTest, ZeroWindowTriggersPersistProbes) {
  bool finished = false;
  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->SetOpt(lfd, SockOpt::kRcvBuf, 4096);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 1);
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    // Refuse to read for a long while: the sender fills the 4 KB window
    // and must keep the connection alive with persist probes.
    w.sim().current_thread()->SleepFor(Seconds(20));
    uint8_t buf[2048];
    size_t got = 0;
    for (;;) {
      Result<size_t> n = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
      if (!n.ok() || *n == 0) {
        break;
      }
      got += *n;
    }
    finished = got == 16 * 1024;
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(5));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
    std::vector<uint8_t> data(16 * 1024, 0x2a);
    size_t sent = 0;
    while (sent < data.size()) {
      Result<size_t> n = api->Send(fd, data.data() + sent, data.size() - sent, nullptr);
      ASSERT_TRUE(n.ok());
      sent += *n;
    }
    api->Close(fd);
  });
  w.sim().Run(Seconds(120));
  EXPECT_TRUE(finished);
  EXPECT_GT(w.kernel_node(0)->stack()->tcp().stats().persist_probes, 0u)
      << "sender must probe a zero window";
}

TEST_F(TcpStateTest, KeepaliveDropsDeadPeer) {
  // Note: with SO_KEEPALIVE and an unresponsive peer the connection must
  // eventually die with ETIMEDOUT rather than hang forever.
  bool checked = false;
  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 1);
    api->Accept(lfd, nullptr);
    // Peer goes silent AND the wire blackholes: probes get no answers.
    w.sim().current_thread()->SleepFor(Seconds(9500));
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(5));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
    api->SetOpt(fd, SockOpt::kKeepAlive, 1);
    FaultPlan faults;
    faults.loss_rate = 1.0;
    w.wire().SetFaults(faults);
    uint8_t b[4];
    Result<size_t> n = api->Recv(fd, b, sizeof(b), nullptr, false);
    // The keepalive machinery eventually errors the blocked receive out.
    EXPECT_FALSE(n.ok() && *n > 0);
    checked = true;
  });
  w.sim().Run(Seconds(9000));
  EXPECT_TRUE(checked);
  EXPECT_GT(w.kernel_node(0)->stack()->tcp().stats().keepalive_probes, 0u);
}

TEST_F(TcpStateTest, NodelaySendsSmallSegmentsImmediately) {
  // With Nagle (default), back-to-back 1-byte sends while unacknowledged
  // data is outstanding coalesce; with TCP_NODELAY each goes out alone.
  auto run = [](bool nodelay) -> uint64_t {
    World w(Config::kInKernel, MachineProfile::DecStation5000());
    uint64_t data_segs = 0;
    w.SpawnApp(1, "rx", [&] {
      SocketApi* api = w.api(1);
      int lfd = *api->CreateSocket(IpProto::kTcp);
      api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
      api->Listen(lfd, 1);
      Result<int> cfd = api->Accept(lfd, nullptr);
      if (!cfd.ok()) {
        return;
      }
      uint8_t buf[64];
      size_t got = 0;
      while (got < 20) {
        Result<size_t> n = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
        if (!n.ok() || *n == 0) {
          break;
        }
        got += *n;
      }
    });
    w.SpawnApp(0, "tx", [&] {
      SocketApi* api = w.api(0);
      int fd = *api->CreateSocket(IpProto::kTcp);
      w.sim().current_thread()->SleepFor(Millis(5));
      if (!api->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok()) {
        return;
      }
      api->SetOpt(fd, SockOpt::kNoDelay, nodelay ? 1 : 0);
      uint8_t b = 0x55;
      for (int i = 0; i < 20; i++) {
        api->Send(fd, &b, 1, nullptr);  // no waiting between sends
      }
    });
    w.sim().Run(Seconds(30));
    data_segs = w.kernel_node(0)->stack()->tcp().stats().data_segs_sent;
    return data_segs;
  };
  uint64_t nagle_segs = run(false);
  uint64_t nodelay_segs = run(true);
  EXPECT_LT(nagle_segs, nodelay_segs) << "Nagle must coalesce tinygrams";
  EXPECT_EQ(nodelay_segs, 20u);
}

// Port-name lifecycle across destroy and migration: only the owning pcb
// releases a port, ownership survives a listener dying before its accepted
// children, and a migrated-out pcb leaves the name allocated for the OS
// server to release at session teardown.
class TcpPortLifecycleTest : public ::testing::Test {
 protected:
  TcpPortLifecycleTest() : w(Config::kInKernel, MachineProfile::DecStation5000()) {}

  Stack* stack() { return w.kernel_node(0)->stack(); }

  World w;
};

TEST_F(TcpPortLifecycleTest, MigratedOutPcbKeepsPortAllocated) {
  Stack* s = stack();
  DomainLock lock(s->sync());
  TcpPcb* pcb = s->tcp().Create();
  ASSERT_TRUE(s->tcp().Bind(pcb, SockAddrIn{Ipv4Addr::Any(), 0}).ok());
  uint16_t port = pcb->local.port;
  ASSERT_NE(port, 0);
  ASSERT_TRUE(s->ports().InUse(port));
  // Migrate out: the pcb leaves this stack, but the session lives on at its
  // new home under the same name — releasing the port here would let a new
  // session acquire a duplicate while the migrated one is still live.
  (void)s->tcp().ExtractForMigration(pcb);
  EXPECT_TRUE(s->tcp().pcbs().empty());
  EXPECT_TRUE(s->ports().InUse(port));
  s->ports().Release(port);  // what the session's owner does at teardown
}

TEST_F(TcpPortLifecycleTest, ListenerClosingFirstPassesPortToChildren) {
  Stack* s = stack();
  DomainLock lock(s->sync());
  TcpPcb* listener = s->tcp().Create();
  ASSERT_TRUE(s->tcp().Bind(listener, SockAddrIn{Ipv4Addr::Any(), 7777}).ok());
  TcpPcb* c1 = s->tcp().Create();
  s->tcp().AdoptBinding(c1, listener->local);
  TcpPcb* c2 = s->tcp().Create();
  s->tcp().AdoptBinding(c2, listener->local);
  // The owner dies first: the shared port must stay allocated for the
  // children, and the last of them must release it (the pre-harness code
  // leaked it here because no survivor owned the binding).
  s->tcp().Destroy(listener);
  EXPECT_TRUE(s->ports().InUse(7777));
  s->tcp().Destroy(c1);
  EXPECT_TRUE(s->ports().InUse(7777));
  s->tcp().Destroy(c2);
  EXPECT_FALSE(s->ports().InUse(7777));
}

}  // namespace
}  // namespace psd
