// IP fragmentation/reassembly, UDP semantics (boundaries, checksums,
// truncation, ICMP port-unreachable), and ARP behaviour.
#include <gtest/gtest.h>

#include "src/testbed/world.h"

namespace psd {
namespace {

class InetTest : public ::testing::Test {
 protected:
  InetTest() : w(Config::kInKernel, MachineProfile::DecStation5000()) {}
  World w;
};

TEST_F(InetTest, UdpDatagramLargerThanMtuFragmentsAndReassembles) {
  constexpr size_t kSize = 8000;  // > 5 fragments at 1480 bytes each
  bool ok = false;
  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int fd = *api->CreateSocket(IpProto::kUdp);
    api->SetOpt(fd, SockOpt::kRcvBuf, 64 * 1024);
    api->Bind(fd, SockAddrIn{Ipv4Addr::Any(), 7000});
    std::vector<uint8_t> buf(kSize);
    Result<size_t> n = api->Recv(fd, buf.data(), buf.size(), nullptr, false);
    if (n.ok() && *n == 1) {
      n = api->Recv(fd, buf.data(), buf.size(), nullptr, false);  // skip ARP warm-up probe
    }
    if (n.ok() && *n == kSize) {
      ok = true;
      for (size_t i = 0; i < kSize; i++) {
        if (buf[i] != static_cast<uint8_t>(i % 251)) {
          ok = false;
          break;
        }
      }
    }
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kUdp);
    api->SetOpt(fd, SockOpt::kSndBuf, 64 * 1024);
    w.sim().current_thread()->SleepFor(Millis(10));
    SockAddrIn dst{w.addr(1), 7000};
    // Warm ARP first: a cold multi-fragment burst would overflow the ARP
    // hold queue (BSD holds few packets per unresolved entry) and UDP does
    // not retransmit lost fragments.
    uint8_t probe[1] = {0xff};
    api->Send(fd, probe, 1, &dst);
    w.sim().current_thread()->SleepFor(Millis(20));
    std::vector<uint8_t> data(kSize);
    for (size_t i = 0; i < kSize; i++) {
      data[i] = static_cast<uint8_t>(i % 251);
    }
    api->Send(fd, data.data(), data.size(), &dst);
  });
  w.sim().Run(Seconds(10));
  EXPECT_TRUE(ok);
  EXPECT_GT(w.kernel_node(0)->stack()->ip().stats().fragments_sent, 4u);
  EXPECT_EQ(w.kernel_node(1)->stack()->ip().stats().reassembled, 1u);
}

TEST_F(InetTest, LostFragmentTimesOutReassembly) {
  bool got = false;
  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int fd = *api->CreateSocket(IpProto::kUdp);
    api->SetOpt(fd, SockOpt::kRcvBuf, 64 * 1024);
    api->Bind(fd, SockAddrIn{Ipv4Addr::Any(), 7000});
    std::vector<uint8_t> buf(8000);
    Result<size_t> n = api->Recv(fd, buf.data(), buf.size(), nullptr, false);
    if (n.ok() && *n == 1) {
      // That was the ARP warm-up probe; the fragmented datagram never
      // completes, so this second receive must block forever.
      n = api->Recv(fd, buf.data(), buf.size(), nullptr, false);
    }
    got = n.ok() && *n > 1;
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kUdp);
    api->SetOpt(fd, SockOpt::kSndBuf, 64 * 1024);
    w.sim().current_thread()->SleepFor(Millis(10));
    SockAddrIn dst{w.addr(1), 7000};
    uint8_t probe[1] = {0xff};
    api->Send(fd, probe, 1, &dst);  // warm ARP (see above)
    w.sim().current_thread()->SleepFor(Millis(20));
    // Lose exactly the fragments of this datagram with certainty: the
    // fault plan starts only now, after ARP and the probe went through.
    FaultPlan faults;
    faults.loss_rate = 0.5;
    faults.seed = 4;
    w.wire().SetFaults(faults);
    std::vector<uint8_t> data(7000, 0x3c);
    api->Send(fd, data.data(), data.size(), &dst);
  });
  // The datagram cannot reassemble (UDP does not retransmit); the partial
  // state must be garbage-collected by the reassembly timeout.
  w.sim().Run(Seconds(60));
  const IpStats& stats = w.kernel_node(1)->stack()->ip().stats();
  EXPECT_EQ(stats.reassembled, 0u);
  EXPECT_EQ(stats.reassembly_timeouts, 1u);
  EXPECT_FALSE(got);
}

TEST_F(InetTest, UdpPreservesMessageBoundaries) {
  std::vector<size_t> sizes;
  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int fd = *api->CreateSocket(IpProto::kUdp);
    api->Bind(fd, SockAddrIn{Ipv4Addr::Any(), 7000});
    uint8_t buf[512];
    for (int i = 0; i < 3; i++) {
      Result<size_t> n = api->Recv(fd, buf, sizeof(buf), nullptr, false);
      if (n.ok()) {
        sizes.push_back(*n);
      }
    }
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kUdp);
    w.sim().current_thread()->SleepFor(Millis(10));
    SockAddrIn dst{w.addr(1), 7000};
    uint8_t buf[300] = {};
    api->Send(fd, buf, 10, &dst);
    api->Send(fd, buf, 300, &dst);
    api->Send(fd, buf, 1, &dst);
  });
  w.sim().Run(Seconds(10));
  EXPECT_EQ(sizes, (std::vector<size_t>{10, 300, 1}));
}

TEST_F(InetTest, UdpTruncatesOversizedDatagramOnRecv) {
  size_t got = 0;
  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int fd = *api->CreateSocket(IpProto::kUdp);
    api->Bind(fd, SockAddrIn{Ipv4Addr::Any(), 7000});
    uint8_t small[16];
    Result<size_t> n = api->Recv(fd, small, sizeof(small), nullptr, false);
    got = n.ok() ? *n : 0;
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kUdp);
    w.sim().current_thread()->SleepFor(Millis(10));
    uint8_t big[200] = {};
    SockAddrIn dst{w.addr(1), 7000};
    api->Send(fd, big, sizeof(big), &dst);
  });
  w.sim().Run(Seconds(10));
  EXPECT_EQ(got, 16u);  // BSD: excess datagram bytes are discarded
}

TEST_F(InetTest, UdpOversizedSendReturnsMsgSize) {
  Err err = Err::kOk;
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kUdp);
    std::vector<uint8_t> huge(kUdpSendSpace + 1);
    SockAddrIn dst{w.addr(1), 7000};
    Result<size_t> r = api->Send(fd, huge.data(), huge.size(), &dst);
    err = r.error();
  });
  w.sim().Run(Seconds(5));
  EXPECT_EQ(err, Err::kMsgSize);
}

TEST_F(InetTest, IcmpPortUnreachableBecomesConnRefused) {
  Err err = Err::kOk;
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kUdp);
    // Connected UDP socket to a port nobody listens on.
    api->Connect(fd, SockAddrIn{w.addr(1), 4444});
    uint8_t b[4] = {};
    api->Send(fd, b, sizeof(b), nullptr);
    w.sim().current_thread()->SleepFor(Millis(50));
    // BSD reports the asynchronous error on the next operation.
    Result<size_t> r = api->Send(fd, b, sizeof(b), nullptr);
    if (!r.ok()) {
      err = r.error();
    }
  });
  w.sim().Run(Seconds(10));
  EXPECT_EQ(err, Err::kConnRefused);
  EXPECT_GE(w.kernel_node(1)->stack()->icmp().unreachables_sent(), 1u);
}

TEST_F(InetTest, ArpResolvesOnceThenCaches) {
  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int fd = *api->CreateSocket(IpProto::kUdp);
    api->Bind(fd, SockAddrIn{Ipv4Addr::Any(), 7000});
    uint8_t buf[32];
    for (int i = 0; i < 5; i++) {
      api->Recv(fd, buf, sizeof(buf), nullptr, false);
    }
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kUdp);
    w.sim().current_thread()->SleepFor(Millis(10));
    SockAddrIn dst{w.addr(1), 7000};
    uint8_t b[8] = {};
    for (int i = 0; i < 5; i++) {
      api->Send(fd, b, sizeof(b), &dst);
    }
  });
  w.sim().Run(Seconds(10));
  // One request resolves the peer; later sends hit the cache.
  EXPECT_EQ(w.kernel_node(0)->stack()->arp()->requests_sent(), 1u);
  EXPECT_GE(w.kernel_node(1)->stack()->arp()->replies_sent(), 1u);
}

TEST_F(InetTest, ArpGivesUpOnNonexistentHost) {
  Err err = Err::kOk;
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kUdp);
    SockAddrIn ghost{Ipv4Addr::FromOctets(10, 0, 0, 200), 7000};
    uint8_t b[4] = {};
    // Sends queue behind the unresolvable ARP entry; a saturated hold
    // queue silently drops the oldest held packet (BSD arpresolve
    // behaviour) — the sender never sees an error, datagrams just
    // vanish until ARP gives up and clears the entry.
    for (int i = 0; i < 8 && err == Err::kOk; i++) {
      Result<size_t> r = api->Send(fd, b, sizeof(b), &ghost);
      if (!r.ok()) {
        err = r.error();
      }
      w.sim().current_thread()->SleepFor(Millis(100));
    }
  });
  w.sim().Run(Seconds(30));
  EXPECT_EQ(err, Err::kOk);
  EXPECT_GT(w.kernel_node(0)->stack()->arp()->requests_sent(), 1u);  // retried
  // 8 datagrams raced a hold queue of kMaxHold=4: the overflow was
  // dropped silently, not surfaced.
  EXPECT_GT(w.kernel_node(0)->stack()->arp()->hold_drops(), 0u);
}

}  // namespace
}  // namespace psd
