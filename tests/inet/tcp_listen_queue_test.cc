// Listen-queue accounting under adversarial handshakes: the split SYN/accept
// backlog bounds, the embryonic-slot release when the connection-establishment
// timer reaps a half-open child (the slot-leak regression), and listen-path
// MSS selection with and without the peer's MSS option.
//
// These tests drive TcpLayer::Input directly with hand-built segments (via
// the TcpTestPeer friend) so a SYN can arrive and then simply never be
// ACKed — something no well-behaved Socket client can be made to do.
#include <gtest/gtest.h>

#include <vector>

#include "src/base/bytes.h"
#include "src/base/checksum.h"
#include "src/obs/journey.h"
#include "src/testbed/world.h"

namespace psd {

// Friend of TcpLayer: injects raw segments as if they arrived from IP.
class TcpTestPeer {
 public:
  static void Inject(TcpLayer* tcp, Chain seg, Ipv4Addr src, Ipv4Addr dst) {
    tcp->Input(std::move(seg), src, dst);
  }
};

namespace {

// Builds a checksummed TCP segment. `mss` of 0 omits the MSS option.
std::vector<uint8_t> BuildSegment(Ipv4Addr src, Ipv4Addr dst, uint16_t sport, uint16_t dport,
                                  uint32_t seq, uint32_t ack, uint8_t flags, uint16_t mss) {
  size_t hdrlen = mss != 0 ? 24 : 20;
  std::vector<uint8_t> seg(hdrlen, 0);
  Store16(&seg[0], sport);
  Store16(&seg[2], dport);
  Store32(&seg[4], seq);
  Store32(&seg[8], ack);
  seg[12] = static_cast<uint8_t>((hdrlen / 4) << 4);
  seg[13] = flags;
  Store16(&seg[14], 4096);  // window
  if (mss != 0) {
    seg[20] = 2;  // kind: MSS
    seg[21] = 4;  // length
    Store16(&seg[22], mss);
  }
  ChecksumAccumulator acc;
  acc.AddWord(static_cast<uint16_t>(src.v >> 16));
  acc.AddWord(static_cast<uint16_t>(src.v));
  acc.AddWord(static_cast<uint16_t>(dst.v >> 16));
  acc.AddWord(static_cast<uint16_t>(dst.v));
  acc.AddWord(static_cast<uint16_t>(IpProto::kTcp));
  acc.AddWord(static_cast<uint16_t>(seg.size()));
  acc.Add(seg.data(), seg.size());
  Store16(&seg[16], acc.Finish());
  return seg;
}

class ListenQueueTest : public ::testing::Test {
 protected:
  ListenQueueTest() : w(Config::kInKernel, MachineProfile::DecStation5000()) {
    DropLedger::Get().Reset();
  }

  TcpLayer* tcp(int i) { return &w.kernel_node(i)->stack()->tcp(); }

  // Injects a segment into host `i`'s stack from a (possibly fictional)
  // on-link source address. Must run on an app fiber.
  void Inject(int i, Ipv4Addr src, uint16_t sport, uint16_t dport, uint32_t seq, uint8_t flags,
              uint16_t mss = 0) {
    Stack* st = w.kernel_node(i)->stack();
    {
      DomainLock lock(st->sync());
      std::vector<uint8_t> seg = BuildSegment(src, w.addr(i), sport, dport, seq, 0, flags, mss);
      TcpTestPeer::Inject(&st->tcp(), Chain::FromVector(seg), src, w.addr(i));
    }
    // The normal receive path kicks the stack's timer fiber after input;
    // direct injection must do the same or the new pcb's timers never run.
    st->Kick();
  }

  TcpPcb* FindListener(int i, uint16_t port) {
    for (const auto& p : tcp(i)->pcbs()) {
      if (p->state == TcpState::kListen && p->local.port == port) {
        return p.get();
      }
    }
    return nullptr;
  }

  TcpPcb* FindByRemote(int i, const SockAddrIn& remote) {
    for (const auto& p : tcp(i)->pcbs()) {
      if (p->state != TcpState::kListen && p->remote == remote) {
        return p.get();
      }
    }
    return nullptr;
  }

  World w;
};

// The slot-leak regression. A flood of SYNs that are never ACKed fills the
// listener's SYN half; each half-open child must give its slot back when the
// connection-establishment timer (kTcpConnEstablishTicks) reaps it, or the
// listener is wedged forever and no client can ever connect again.
TEST_F(ListenQueueTest, EstablishTimerReleasesEmbryonicSlots) {
  // Fictional on-link peers: their SYNs arrive, but they will never answer
  // the SYN-ACK (there is nobody there — the SYN-ACKs die in ARP).
  const Ipv4Addr ghost = Ipv4Addr::FromOctets(10, 0, 200, 1);

  w.SpawnApp(1, "srv", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001}).ok());
    ASSERT_TRUE(api->Listen(lfd, 2).ok());  // SYN half: max(1, 3) = 3
    // Accept whatever eventually completes; the fd parks here.
    api->Accept(lfd, nullptr);
  });

  w.SpawnApp(1, "flood", [&] {
    w.sim().current_thread()->SleepFor(Millis(10));
    // Fill the SYN half exactly...
    for (uint16_t k = 0; k < 3; k++) {
      Inject(1, ghost, static_cast<uint16_t>(20000 + k), 5001, 1000 + k, kTcpSyn);
    }
    // ...and one more, which must bounce off the full SYN half.
    Inject(1, ghost, 20099, 5001, 99, kTcpSyn);
  });

  w.sim().RunFor(Seconds(1));
  TcpPcb* listener = FindListener(1, 5001);
  ASSERT_NE(listener, nullptr);
  {
    DomainLock lock(w.kernel_node(1)->stack()->sync());
    EXPECT_EQ(listener->syn_backlog, 3);
    EXPECT_EQ(listener->embryonic, 3);
  }
  EXPECT_EQ(DropLedger::Get().total(DropReason::kTcpListenOverflow), 1u);

  // The establishment timer (75 s) reaps all three half-open children and
  // must hand their SYN-half slots back.
  w.sim().RunFor(Seconds(80));
  {
    DomainLock lock(w.kernel_node(1)->stack()->sync());
    EXPECT_EQ(listener->embryonic, 0) << "reaped embryonic children leaked their listen slots";
  }

  // With the slots released a real client connects; with the leak it is
  // refused until its own establishment timer gives up.
  bool connected = false;
  w.SpawnApp(0, "late-client", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    Result<void> c = api->Connect(fd, SockAddrIn{w.addr(1), 5001});
    ASSERT_TRUE(c.ok()) << ErrName(c.error());
    connected = true;
    api->Close(fd);
  });
  w.sim().RunFor(Seconds(90));
  EXPECT_TRUE(connected) << "listener never recovered from the SYN flood";
}

// A SYN that refuses to die: as long as the handshake is alive the child
// keeps its slot, and destroying the listener's whole pcb set at teardown
// must not trip the accounting (covered implicitly by World teardown).
TEST_F(ListenQueueTest, SynHalfBoundIsIndependentOfAcceptHalf) {
  const Ipv4Addr ghost = Ipv4Addr::FromOctets(10, 0, 200, 2);

  w.SpawnApp(1, "srv", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5002}).ok());
    ASSERT_TRUE(api->Listen(lfd, 4).ok());  // accept half 4, SYN half 6
  });
  w.SpawnApp(1, "flood", [&] {
    w.sim().current_thread()->SleepFor(Millis(10));
    for (uint16_t k = 0; k < 8; k++) {
      Inject(1, ghost, static_cast<uint16_t>(21000 + k), 5002, 2000 + k, kTcpSyn);
    }
  });
  w.sim().RunFor(Seconds(1));
  TcpPcb* listener = FindListener(1, 5002);
  ASSERT_NE(listener, nullptr);
  {
    DomainLock lock(w.kernel_node(1)->stack()->sync());
    EXPECT_EQ(listener->syn_backlog, 6);
    EXPECT_EQ(listener->embryonic, 6);  // 8 SYNs, 6 admitted
    EXPECT_TRUE(listener->accept_ready.empty());
  }
  EXPECT_EQ(DropLedger::Get().total(DropReason::kTcpListenOverflow), 2u);
}

// Listen-path MSS: a peer that advertises an MSS gets it (clamped by the
// route), and a peer that omits the option still gets route-sized segments
// instead of the 536-byte global default — matching the active-open path.
TEST_F(ListenQueueTest, ListenPathMssFollowsRouteWhenOptionAbsent) {
  const Ipv4Addr ghost = Ipv4Addr::FromOctets(10, 0, 200, 3);

  w.SpawnApp(1, "srv", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5003}).ok());
    ASSERT_TRUE(api->Listen(lfd, 4).ok());
  });
  w.SpawnApp(1, "peers", [&] {
    w.sim().current_thread()->SleepFor(Millis(10));
    Inject(1, ghost, 22001, 5003, 3001, kTcpSyn, /*mss=*/1000);  // small advertised MSS
    Inject(1, ghost, 22002, 5003, 3002, kTcpSyn, /*mss=*/9000);  // larger than the route
    Inject(1, ghost, 22003, 5003, 3003, kTcpSyn);                // no MSS option at all
  });
  w.sim().RunFor(Seconds(1));

  DomainLock lock(w.kernel_node(1)->stack()->sync());
  TcpPcb* with_small = FindByRemote(1, SockAddrIn{ghost, 22001});
  TcpPcb* with_large = FindByRemote(1, SockAddrIn{ghost, 22002});
  TcpPcb* without = FindByRemote(1, SockAddrIn{ghost, 22003});
  ASSERT_NE(with_small, nullptr);
  ASSERT_NE(with_large, nullptr);
  ASSERT_NE(without, nullptr);
  EXPECT_EQ(with_small->t_maxseg, 1000);       // peer's advertisement honoured
  EXPECT_EQ(with_large->t_maxseg, kTcpEtherMss);  // clamped to the on-link route
  EXPECT_EQ(without->t_maxseg, kTcpEtherMss)
      << "peer without an MSS option fell back to the global default "
         "instead of the route MSS";
}

}  // namespace
}  // namespace psd
