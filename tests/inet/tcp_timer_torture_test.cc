// TCP timer torture: drives each slow-timer mechanism to its edge using
// wire-level faults (scheduled link partitions) instead of poking pcb state
// directly — persist probes against a zero window, keepalive probing and
// abort across a dead link, TIME_WAIT expiry reclaiming the pcb, and the
// max-backoff retransmission abort.
#include <gtest/gtest.h>

#include <vector>

#include "src/testbed/world.h"

namespace psd {
namespace {

// A zero receive window holds the sender in persist: the receiver stops
// reading mid-transfer, the sender's window closes, and persist probes keep
// the connection alive until the window reopens — then the transfer
// completes in full.
TEST(TcpTimerTorture, PersistProbesSurviveZeroWindow) {
  World w(Config::kInKernel, MachineProfile::DecStation5000());
  constexpr size_t kTotal = 64 * 1024;
  size_t got = 0;
  bool server_done = false;
  bool client_done = false;

  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->SetOpt(lfd, SockOpt::kRcvBuf, 4096).ok());
    ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5004}).ok());
    ASSERT_TRUE(api->Listen(lfd, 5).ok());
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    uint8_t buf[2048];
    // Read a little, then go quiet long enough for several persist
    // intervals (persist backoff starts at ~2.5 s) before draining.
    Result<size_t> first = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
    ASSERT_TRUE(first.ok());
    got += *first;
    w.sim().current_thread()->SleepFor(Seconds(30));
    for (;;) {
      Result<size_t> n = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
      ASSERT_TRUE(n.ok()) << ErrName(n.error());
      if (*n == 0) {
        break;
      }
      got += *n;
    }
    api->Close(*cfd);
    api->Close(lfd);
    server_done = true;
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(10));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5004}).ok());
    std::vector<uint8_t> data(kTotal, 0x5A);
    size_t sent = 0;
    while (sent < data.size()) {
      Result<size_t> n = api->Send(fd, data.data() + sent, data.size() - sent, nullptr);
      ASSERT_TRUE(n.ok()) << ErrName(n.error());
      sent += *n;
    }
    api->Close(fd);
    client_done = true;
  });
  w.sim().Run(Seconds(300));

  ASSERT_TRUE(server_done);
  ASSERT_TRUE(client_done);
  EXPECT_EQ(got, kTotal);
  EXPECT_GT(w.stack(0)->tcp().stats().persist_probes, 0u);
}

// SO_KEEPALIVE across a permanently dead link: after the two-hour idle
// threshold the stack sends probes, and after ~8 unanswered probes it
// aborts the connection with a timeout the application can see. Without
// the partition the same idle connection must survive.
TEST(TcpTimerTorture, KeepaliveProbesAndAbortsAcrossDeadLink) {
  World w(Config::kInKernel, MachineProfile::DecStation5000());
  bool client_saw_timeout = false;
  bool client_done = false;

  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5005}).ok());
    ASSERT_TRUE(api->Listen(lfd, 5).ok());
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    // Keep the fd open; never answer again (the partition eats the probes
    // anyway). The World force-unwinds this thread at teardown.
    uint8_t buf[64];
    (void)api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->SetOpt(fd, SockOpt::kKeepAlive, 1).ok());
    w.sim().current_thread()->SleepFor(Millis(10));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5005}).ok());
    // Partition both directions from t=1 s, forever: the established,
    // idle connection has no traffic to notice it — only keepalive does.
    FaultPlan plan;
    plan.partitions.push_back(LinkPartition{-1, -1, Seconds(1), kTimeNever});
    w.wire().SetFaults(plan);
    // Block in Recv; the keepalive abort must wake us with an error.
    uint8_t buf[64];
    Result<size_t> n = api->Recv(fd, buf, sizeof(buf), nullptr, false);
    client_saw_timeout = !n.ok() && n.error() == Err::kTimedOut;
    api->Close(fd);
    client_done = true;
  });
  // Keepalive idle threshold is 2 virtual hours (14400 slow ticks), probes
  // every 75 s, abort after ~8 unanswered: ~2.5 h total.
  w.sim().Run(Seconds(3 * 3600));

  ASSERT_TRUE(client_done);
  EXPECT_TRUE(client_saw_timeout);
  EXPECT_GT(w.stack(0)->tcp().stats().keepalive_probes, 0u);
  // The aborted pcb is gone — no zombie connection holds the port.
  EXPECT_EQ(w.stack(0)->tcp().pcbs().size(), 0u);
}

// Active close enters TIME_WAIT, holds the pcb for 2MSL, then reclaims it.
TEST(TcpTimerTorture, TimeWaitExpiresAndReclaimsThePcb) {
  World w(Config::kInKernel, MachineProfile::DecStation5000());
  bool client_done = false;

  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5006}).ok());
    ASSERT_TRUE(api->Listen(lfd, 5).ok());
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    uint8_t buf[64];
    Result<size_t> n = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
    EXPECT_TRUE(n.ok() && *n == 0);  // clean EOF from the client's close
    api->Close(*cfd);
    api->Close(lfd);
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(10));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5006}).ok());
    api->Close(fd);  // active close: this side enters TIME_WAIT
    client_done = true;
  });

  // Let the close handshake finish, then verify the active closer is
  // parked in TIME_WAIT.
  w.sim().Run(Seconds(5));
  ASSERT_TRUE(client_done);
  bool saw_time_wait = false;
  for (const auto& p : w.stack(0)->tcp().pcbs()) {
    saw_time_wait = saw_time_wait || p->state == TcpState::kTimeWait;
  }
  EXPECT_TRUE(saw_time_wait);

  // 2MSL is 60 s of slow ticks; well past that, the pcb must be reclaimed.
  w.sim().Run(Seconds(5 + 90));
  EXPECT_EQ(w.stack(0)->tcp().pcbs().size(), 0u);
  EXPECT_EQ(w.stack(1)->tcp().pcbs().size(), 0u);
}

// When every retransmission dies on a dead link, exponential backoff runs
// the shift table to the end and the connection aborts instead of retrying
// forever.
TEST(TcpTimerTorture, MaxBackoffAbortsTheConnection) {
  World w(Config::kInKernel, MachineProfile::DecStation5000());
  bool sender_saw_error = false;
  bool sender_done = false;

  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5007}).ok());
    ASSERT_TRUE(api->Listen(lfd, 5).ok());
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    uint8_t buf[4096];
    for (;;) {
      Result<size_t> n = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
      if (!n.ok() || *n == 0) {
        break;
      }
    }
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(10));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5007}).ok());
    uint8_t chunk[1024] = {0x17};
    ASSERT_TRUE(api->Send(fd, chunk, sizeof(chunk), nullptr).ok());
    // Kill the link under the established connection. Every retransmission
    // of the unacked data now dies.
    FaultPlan plan;
    plan.partitions.push_back(LinkPartition{-1, -1, Seconds(1), kTimeNever});
    w.wire().SetFaults(plan);
    w.sim().current_thread()->SleepFor(Seconds(2));
    ASSERT_TRUE(api->Send(fd, chunk, sizeof(chunk), nullptr).ok());
    // Block until the abort: Recv returns the pending error.
    uint8_t buf[64];
    Result<size_t> n = api->Recv(fd, buf, sizeof(buf), nullptr, false);
    sender_saw_error = !n.ok() && n.error() == Err::kTimedOut;
    api->Close(fd);
    sender_done = true;
  });
  // Backoff sum: ~3 ticks * (1+2+4+8+16+32) + 7 * 128-tick clamp ≈ 9 min.
  w.sim().Run(Seconds(1500));

  ASSERT_TRUE(sender_done);
  EXPECT_TRUE(sender_saw_error);
  EXPECT_GE(w.stack(0)->tcp().stats().rexmt_timeouts, 12u);
  EXPECT_EQ(w.stack(0)->tcp().pcbs().size(), 0u);
}

}  // namespace
}  // namespace psd
