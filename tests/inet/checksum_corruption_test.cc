// Checksum-vs-corruption property tests.
//
// The fault injector's contract (EthernetSegment::CorruptFrame) is that
// every injected corruption is detectable: 1-2 bit flips confined to one
// aligned 16-bit word can never alias the RFC 1071 ones-complement sum.
// This file proves the math exhaustively, then shows the protocol stacks
// holding the line end to end: corrupted datagrams never reach an
// application, corrupted TCP segments are retransmitted until the stream
// arrives intact, and every corrupted frame is accounted for by exactly one
// checksum/header-validation counter.
#include <gtest/gtest.h>

#include <vector>

#include "src/base/checksum.h"
#include "src/base/rng.h"
#include "src/testbed/world.h"

namespace psd {
namespace {

// Exhaustive: for every aligned 16-bit word and every 1- or 2-bit flip
// pattern within it, the Internet checksum of the buffer changes. The
// ones-complement sum is only blind to a word changing by a multiple of
// 0xFFFF; 1-2 flips move a word by at most ±0xC000, so no flip pattern the
// injector can produce is invisible.
TEST(ChecksumCorruption, AlignedWordFlipsAlwaysChangeTheSum) {
  Rng rng = Rng::Stream(1234, 0);
  std::vector<uint8_t> buf(64);
  for (uint8_t& b : buf) {
    b = static_cast<uint8_t>(rng.Below(256));
  }
  const uint16_t clean = InternetChecksum(buf.data(), buf.size());

  for (size_t w = 0; w < buf.size() / 2; w++) {
    for (int b1 = 0; b1 < 16; b1++) {
      // Single flip.
      buf[2 * w + b1 / 8] ^= static_cast<uint8_t>(1u << (b1 % 8));
      EXPECT_NE(InternetChecksum(buf.data(), buf.size()), clean)
          << "1-bit alias at word " << w << " bit " << b1;
      // Every distinct second flip in the same word.
      for (int b2 = b1 + 1; b2 < 16; b2++) {
        buf[2 * w + b2 / 8] ^= static_cast<uint8_t>(1u << (b2 % 8));
        EXPECT_NE(InternetChecksum(buf.data(), buf.size()), clean)
            << "2-bit alias at word " << w << " bits " << b1 << "," << b2;
        buf[2 * w + b2 / 8] ^= static_cast<uint8_t>(1u << (b2 % 8));
      }
      buf[2 * w + b1 / 8] ^= static_cast<uint8_t>(1u << (b1 % 8));
    }
  }
}

// Sums every checksum/header-validation counter on host `i` of `w` — the
// set of counters a corrupted inbound frame can land in.
uint64_t ChecksumDrops(World& w, int i) {
  uint64_t total = 0;
  for (Stack* s : w.AllStacks(i)) {
    total += s->ip().stats().bad_header + s->ip().stats().bad_checksum +
             s->tcp().stats().bad_checksum + s->udp().stats().bad_checksum;
  }
  return total;
}

// UDP under heavy corruption: a datagram either arrives byte-exact or not
// at all, and the books reconcile — every corrupted frame shows up in
// exactly one checksum/header counter on the receiver.
TEST(ChecksumCorruption, CorruptedUdpNeverReachesTheApp) {
  World w(Config::kInKernel, MachineProfile::DecStation5000());
  FaultPlan plan;
  plan.corrupt_rate = 0.5;
  plan.corrupt_bits = 1;
  plan.seed = 99;
  w.wire().SetFaults(plan);

  constexpr int kCount = 200;
  constexpr size_t kPayload = 256;
  constexpr uint64_t kContentSeed = 0xC0FFEE;
  auto payload_for = [&](uint64_t seq) {
    std::vector<uint8_t> p(kPayload);
    Rng r = Rng::Stream(kContentSeed, seq);
    p[0] = static_cast<uint8_t>(seq);  // sequence tag, regenerable content
    for (size_t i = 1; i < p.size(); i++) {
      p[i] = static_cast<uint8_t>(r.Below(256));
    }
    return p;
  };

  int received = 0;
  int intact = 0;
  bool rx_done = false;
  bool tx_done = false;
  w.SpawnApp(1, "udp-rx", [&] {
    SocketApi* api = w.api(1);
    int fd = *api->CreateSocket(IpProto::kUdp);
    ASSERT_TRUE(api->Bind(fd, SockAddrIn{Ipv4Addr::Any(), 9000}).ok());
    uint8_t buf[2048];
    for (;;) {
      SelectFds fds;
      fds.read.push_back(fd);
      Result<int> sel = api->Select(&fds, Millis(500));
      if (!sel.ok() || *sel == 0) {
        if (tx_done) {
          break;  // sender finished and the wire went quiet
        }
        continue;
      }
      Result<size_t> n = api->Recv(fd, buf, sizeof(buf), nullptr, false);
      ASSERT_TRUE(n.ok());
      received++;
      ASSERT_EQ(*n, kPayload);
      std::vector<uint8_t> want = payload_for(buf[0]);
      if (std::equal(want.begin(), want.end(), buf)) {
        intact++;
      }
    }
    api->Close(fd);
    rx_done = true;
  });
  w.SpawnApp(0, "udp-tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kUdp);
    SockAddrIn dst{w.addr(1), 9000};
    w.sim().current_thread()->SleepFor(Millis(10));
    for (int i = 0; i < kCount; i++) {
      std::vector<uint8_t> p = payload_for(static_cast<uint64_t>(i));
      ASSERT_TRUE(api->Send(fd, p.data(), p.size(), &dst).ok());
      w.sim().current_thread()->SleepFor(Millis(2));
    }
    api->Close(fd);
    tx_done = true;
  });
  w.sim().Run(Seconds(30));
  ASSERT_TRUE(rx_done);

  // Nothing corrupt got through: every delivered datagram was byte-exact.
  EXPECT_EQ(intact, received);
  // Exact reconciliation: corrupt frames all died in a checksum/header
  // counter, and everything else arrived.
  uint64_t corrupted = w.wire().frames_corrupted();
  ASSERT_GT(corrupted, 0u);
  EXPECT_EQ(ChecksumDrops(w, 1), corrupted);
  EXPECT_EQ(received, kCount - static_cast<int>(corrupted));
}

// TCP under corruption: checksum drops look like loss, so the stream must
// still arrive complete and byte-exact through retransmission.
TEST(ChecksumCorruption, CorruptedTcpStreamArrivesIntact) {
  World w(Config::kInKernel, MachineProfile::DecStation5000());
  FaultPlan plan;
  plan.corrupt_rate = 0.05;
  plan.corrupt_bits = 2;
  plan.seed = 7;
  w.wire().SetFaults(plan);

  constexpr size_t kTotal = 96 * 1024;
  size_t got = 0;
  bool content_ok = true;
  bool server_done = false;
  bool client_done = false;
  w.SpawnApp(1, "tcp-rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5002}).ok());
    ASSERT_TRUE(api->Listen(lfd, 5).ok());
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    uint8_t buf[4096];
    for (;;) {
      Result<size_t> n = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
      ASSERT_TRUE(n.ok()) << ErrName(n.error());
      if (*n == 0) {
        break;
      }
      for (size_t i = 0; i < *n; i++) {
        content_ok = content_ok && buf[i] == static_cast<uint8_t>((got + i) * 131 % 251);
      }
      got += *n;
    }
    api->Close(*cfd);
    api->Close(lfd);
    server_done = true;
  });
  w.SpawnApp(0, "tcp-tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(10));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5002}).ok());
    std::vector<uint8_t> data(kTotal);
    for (size_t i = 0; i < data.size(); i++) {
      data[i] = static_cast<uint8_t>(i * 131 % 251);
    }
    size_t sent = 0;
    while (sent < data.size()) {
      Result<size_t> n = api->Send(fd, data.data() + sent, data.size() - sent, nullptr);
      ASSERT_TRUE(n.ok()) << ErrName(n.error());
      sent += *n;
    }
    api->Close(fd);
    client_done = true;
  });
  w.sim().Run(Seconds(300));

  ASSERT_TRUE(server_done);
  ASSERT_TRUE(client_done);
  EXPECT_EQ(got, kTotal);
  EXPECT_TRUE(content_ok);
  uint64_t corrupted = w.wire().frames_corrupted();
  ASSERT_GT(corrupted, 0u);
  // Both directions carry TCP, so both hosts' counters participate.
  EXPECT_EQ(ChecksumDrops(w, 0) + ChecksumDrops(w, 1), corrupted);
}

}  // namespace
}  // namespace psd
