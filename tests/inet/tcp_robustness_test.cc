// TCP correctness under adverse network conditions: loss, duplication,
// reordering, and combinations — the byte stream must arrive intact and in
// order regardless. Runs on the in-kernel placement (the protocol code is
// identical in all placements).
#include <gtest/gtest.h>

#include <numeric>

#include "src/testbed/world.h"

namespace psd {
namespace {

struct TransferResult {
  bool ok = false;
  uint64_t retransmits = 0;
  uint64_t fast_retransmits = 0;
  uint64_t out_of_order = 0;
};

// Transfers `total` patterned bytes under the given fault plan and verifies
// content integrity end to end.
TransferResult Transfer(const FaultPlan& faults, size_t total, SimDuration deadline = Seconds(300)) {
  World w(Config::kInKernel, MachineProfile::DecStation5000());
  w.wire().SetFaults(faults);
  TransferResult result;
  bool content_ok = true;

  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->SetOpt(lfd, SockOpt::kRcvBuf, 16 * 1024);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 1);
    Result<int> cfd = api->Accept(lfd, nullptr);
    if (!cfd.ok()) {
      return;
    }
    size_t got = 0;
    uint8_t buf[4096];
    for (;;) {
      Result<size_t> n = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
      if (!n.ok() || *n == 0) {
        break;
      }
      for (size_t i = 0; i < *n; i++) {
        if (buf[i] != static_cast<uint8_t>((got + i) % 253)) {
          content_ok = false;
        }
      }
      got += *n;
    }
    result.ok = content_ok && got == total;
    api->Close(*cfd);
    api->Close(lfd);
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(5));
    if (!api->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok()) {
      return;
    }
    std::vector<uint8_t> data(total);
    for (size_t i = 0; i < total; i++) {
      data[i] = static_cast<uint8_t>(i % 253);
    }
    size_t sent = 0;
    while (sent < total) {
      Result<size_t> n = api->Send(fd, data.data() + sent, total - sent, nullptr);
      if (!n.ok()) {
        return;
      }
      sent += *n;
    }
    api->Close(fd);
  });
  w.sim().Run(deadline);
  const TcpStats& tx = w.kernel_node(0)->stack()->tcp().stats();
  const TcpStats& rx = w.kernel_node(1)->stack()->tcp().stats();
  result.retransmits = tx.retransmits;
  result.fast_retransmits = tx.fast_retransmits;
  result.out_of_order = rx.out_of_order;
  return result;
}

TEST(TcpRobustness, LosslessBaseline) {
  TransferResult r = Transfer(FaultPlan{}, 100 * 1024);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.retransmits, 0u);
}

TEST(TcpRobustness, SurvivesPacketLoss) {
  FaultPlan faults;
  faults.loss_rate = 0.02;
  faults.seed = 7;
  TransferResult r = Transfer(faults, 100 * 1024);
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.retransmits, 0u);
}

TEST(TcpRobustness, SurvivesHeavyLoss) {
  FaultPlan faults;
  faults.loss_rate = 0.10;
  faults.seed = 11;
  TransferResult r = Transfer(faults, 30 * 1024, Seconds(600));
  EXPECT_TRUE(r.ok);
}

TEST(TcpRobustness, SurvivesDuplication) {
  FaultPlan faults;
  faults.dup_rate = 0.2;
  faults.seed = 3;
  TransferResult r = Transfer(faults, 60 * 1024);
  EXPECT_TRUE(r.ok);
}

TEST(TcpRobustness, SurvivesReordering) {
  FaultPlan faults;
  faults.delay_rate = 0.15;
  faults.extra_delay = Millis(8);
  faults.seed = 5;
  TransferResult r = Transfer(faults, 60 * 1024);
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.out_of_order, 0u);
}

TEST(TcpRobustness, SurvivesEverythingAtOnce) {
  FaultPlan faults;
  faults.loss_rate = 0.03;
  faults.dup_rate = 0.05;
  faults.delay_rate = 0.08;
  faults.extra_delay = Millis(6);
  faults.seed = 13;
  TransferResult r = Transfer(faults, 50 * 1024, Seconds(600));
  EXPECT_TRUE(r.ok);
}

TEST(TcpRobustness, FastRetransmitTriggersUnderMildLoss) {
  FaultPlan faults;
  faults.loss_rate = 0.01;
  faults.seed = 21;
  TransferResult r = Transfer(faults, 300 * 1024, Seconds(600));
  EXPECT_TRUE(r.ok);
  EXPECT_GT(r.fast_retransmits, 0u)
      << "a lost data segment inside a window should recover via 3 dup ACKs";
}

TEST(TcpRobustness, ConnectTimesOutWhenPeerUnreachable) {
  FaultPlan faults;
  faults.loss_rate = 1.0;  // black hole
  World w(Config::kInKernel, MachineProfile::DecStation5000());
  w.wire().SetFaults(faults);
  Err err = Err::kOk;
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    Result<void> r = api->Connect(fd, SockAddrIn{w.addr(1), 5001});
    err = r.error();
  });
  w.sim().Run(Seconds(200));
  EXPECT_EQ(err, Err::kTimedOut);
}

TEST(TcpRobustness, ListenBacklogLimitsPendingConnections) {
  DropLedger::Get().Reset();
  World w(Config::kInKernel, MachineProfile::DecStation5000());
  int established = 0;
  w.SpawnApp(1, "listener", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 2);
    // Never accepts: the accept queue must cap at the backlog.
    w.sim().current_thread()->SleepFor(Seconds(400));
  });
  for (int i = 0; i < 4; i++) {
    w.SpawnApp(0, "c" + std::to_string(i), [&, i] {
      SocketApi* api = w.api(0);
      int fd = *api->CreateSocket(IpProto::kTcp);
      w.sim().current_thread()->SleepFor(Millis(10 + i));
      if (api->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok()) {
        established++;
      }
    });
  }
  w.sim().Run(Seconds(300));
  // BSD sonewconn semantics: the combined population of embryonic plus
  // accept-ready children is bounded at SYN admission by 3 * backlog / 2
  // (here 3). The first three handshakes are admitted and — since an
  // admitted handshake is never refused at completion — all three
  // establish. The fourth SYN finds the listener full and is dropped, so
  // that client's connect times out.
  EXPECT_EQ(established, 3);
  // Every refused SYN (including retransmits) is ledgered.
  EXPECT_GE(DropLedger::Get().total(DropReason::kTcpListenOverflow), 1u);
  // The admitted children all completed their handshakes, so the listener
  // holds exactly syn_backlog accept-ready children and no embryonic ones.
  Stack* server = w.stack(1);
  DomainLock lock(server->sync());
  TcpPcb* listener = nullptr;
  for (const auto& pcb : server->tcp().pcbs()) {
    if (pcb->state == TcpState::kListen) {
      listener = pcb.get();
    }
  }
  ASSERT_NE(listener, nullptr);
  EXPECT_EQ(listener->embryonic, 0);
  EXPECT_EQ(static_cast<int>(listener->accept_ready.size()), 3);
}

}  // namespace
}  // namespace psd
