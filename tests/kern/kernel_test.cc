#include <gtest/gtest.h>

#include "src/base/bytes.h"
#include "src/filter/session_filter.h"
#include "src/kern/host.h"

namespace psd {
namespace {

std::vector<uint8_t> MakeUdpFrame(Ipv4Addr src, Ipv4Addr dst, uint16_t sport, uint16_t dport,
                                  size_t payload = 8) {
  std::vector<uint8_t> f(14 + 20 + 8 + payload, 0);
  Store16(f.data() + 12, kEtherTypeIpv4);
  f[14] = 0x45;
  f[23] = static_cast<uint8_t>(IpProto::kUdp);
  Store32(f.data() + 26, src.v);
  Store32(f.data() + 30, dst.v);
  Store16(f.data() + 34, sport);
  Store16(f.data() + 36, dport);
  // Destination MAC: host id 2.
  MacAddr dst_mac = MacAddr::FromHostId(2);
  std::copy(dst_mac.b.begin(), dst_mac.b.end(), f.begin());
  return f;
}

class KernelTest : public ::testing::Test {
 protected:
  KernelTest()
      : wire(&sim),
        a(&sim, "a", &prof, &wire, Ipv4Addr::FromOctets(10, 0, 0, 1), 1),
        b(&sim, "b", &prof, &wire, Ipv4Addr::FromOctets(10, 0, 0, 2), 2) {}

  MachineProfile prof = MachineProfile::DecStation5000();
  Simulator sim;
  EthernetSegment wire;
  SimHost a, b;
};

TEST_F(KernelTest, FilterRoutesToQueueEndpoint) {
  PacketQueue* q = b.kernel()->MakeQueueEndpoint("q", 0);
  SessionTuple t{IpProto::kUdp, {b.ip(), 7000}, {}};
  uint64_t id = b.kernel()->InstallFilter(CompileSessionFilter(t), 10,
                                          DeliveryEndpoint{DeliverKind::kShm, q, nullptr});
  ASSERT_NE(id, 0u);

  sim.Spawn("tx", a.cpu(), [&] {
    b.nic();  // silence unused warnings in some configs
    a.kernel()->NetSendFromUser(MakeUdpFrame(a.ip(), b.ip(), 1234, 7000));
  });
  size_t got_len = 0;
  sim.Spawn("rx", b.cpu(), [&] {
    Frame f;
    if (q->Pop(&f, sim.Now() + Seconds(1))) {
      got_len = f.size();
    }
  });
  sim.Run(Seconds(2));
  EXPECT_EQ(got_len, 14u + 20 + 8 + 8);
  EXPECT_EQ(b.kernel()->rx_delivered(), 1u);
}

TEST_F(KernelTest, IndexedDemuxRoutesAmongManySessions) {
  // With several sessions installed (each with its FlowSpec), receive demux
  // resolves via the flow table — one classification, zero program runs —
  // and still lands each frame on the right endpoint.
  constexpr int kSessions = 16;
  std::vector<PacketQueue*> queues;
  for (int i = 0; i < kSessions; i++) {
    PacketQueue* q = b.kernel()->MakeQueueEndpoint("q" + std::to_string(i), 0);
    queues.push_back(q);
    SessionTuple t{IpProto::kUdp, {b.ip(), static_cast<uint16_t>(7000 + i)}, {}};
    FlowSpec flow = SessionFlowSpec(t);
    uint64_t id = b.kernel()->InstallFilter(CompileSessionFilter(t), 10,
                                            DeliveryEndpoint{DeliverKind::kShm, q, nullptr},
                                            &flow);
    ASSERT_NE(id, 0u);
  }
  sim.Spawn("tx", a.cpu(), [&] {
    a.kernel()->NetSendFromUser(MakeUdpFrame(a.ip(), b.ip(), 1234, 7000));
    a.kernel()->NetSendFromUser(MakeUdpFrame(a.ip(), b.ip(), 1234, 7000 + kSessions - 1));
  });
  sim.Run(Seconds(1));
  EXPECT_EQ(queues.front()->size(), 1u);
  EXPECT_EQ(queues.back()->size(), 1u);
  EXPECT_EQ(b.kernel()->rx_delivered(), 2u);
  EXPECT_EQ(b.kernel()->rx_flow_hits(), 2u);
  EXPECT_EQ(b.kernel()->demux_classifies(), 2u);
  // No VM program ran: the flow table resolved both frames.
  EXPECT_EQ(b.kernel()->filter_insns(), 0u);
}

TEST_F(KernelTest, UnmatchedFramesAreDropped) {
  // No filters installed on b at all.
  sim.Spawn("tx", a.cpu(), [&] {
    a.kernel()->NetSendFromUser(MakeUdpFrame(a.ip(), b.ip(), 1, 2));
  });
  sim.Run(Seconds(1));
  EXPECT_EQ(b.kernel()->rx_unmatched(), 1u);
  EXPECT_EQ(b.kernel()->rx_delivered(), 0u);
}

TEST_F(KernelTest, IpcDeliveryPath) {
  Port port(&sim, &prof, "pkt", PortCosts::PacketDelivery(prof));
  b.kernel()->InstallFilter(CompileCatchAllFilter(), 0,
                            DeliveryEndpoint{DeliverKind::kIpc, nullptr, &port});
  sim.Spawn("tx", a.cpu(), [&] {
    a.kernel()->NetSendFromUser(MakeUdpFrame(a.ip(), b.ip(), 5, 6));
  });
  uint32_t kind = 0;
  sim.Spawn("rx", b.cpu(), [&] {
    IpcMessage m;
    if (port.Receive(&m, sim.Now() + Seconds(1))) {
      kind = m.kind;
    }
  });
  sim.Run(Seconds(2));
  EXPECT_EQ(kind, kMsgPacketDelivery);
}

TEST_F(KernelTest, ShmSignalsBatchWhenConsumerBusy) {
  PacketQueue* q = b.kernel()->MakeQueueEndpoint("ring", prof.shm_signal, 64);
  b.kernel()->InstallFilter(CompileCatchAllFilter(), 0,
                            DeliveryEndpoint{DeliverKind::kShm, q, nullptr});
  sim.Spawn("tx", a.cpu(), [&] {
    for (int i = 0; i < 10; i++) {
      a.kernel()->NetSendFromUser(MakeUdpFrame(a.ip(), b.ip(), 5, 6, 1000));
    }
  });
  int popped = 0;
  sim.Spawn("rx", b.cpu(), [&] {
    SimThread* self = sim.current_thread();
    // Consumer shows up after the train has queued: it drains the whole
    // ring with at most one wakeup.
    self->SleepFor(Millis(100));
    Frame f;
    while (q->Pop(&f, sim.Now() + Millis(500))) {
      popped++;
    }
  });
  sim.Run(Seconds(5));
  EXPECT_EQ(popped, 10);
  // The whole train cost at most one wakeup signal: the amortization the
  // paper measures ("multiple packets with a single wakeup").
  EXPECT_LE(q->signals(), 1u);
}

TEST_F(KernelTest, RingOverflowDrops) {
  PacketQueue* q = b.kernel()->MakeQueueEndpoint("tiny", 0, /*capacity=*/2);
  b.kernel()->InstallFilter(CompileCatchAllFilter(), 0,
                            DeliveryEndpoint{DeliverKind::kShm, q, nullptr});
  sim.Spawn("tx", a.cpu(), [&] {
    for (int i = 0; i < 6; i++) {
      a.kernel()->NetSendFromUser(MakeUdpFrame(a.ip(), b.ip(), 5, 6));
    }
  });
  sim.Run(Seconds(1));  // nobody consumes
  EXPECT_EQ(q->size(), 2u);
  EXPECT_EQ(q->dropped(), 4u);
}

TEST_F(KernelTest, WireFaultInjectionDropsFrames) {
  FaultPlan faults;
  faults.loss_rate = 1.0;  // drop everything
  wire.SetFaults(faults);
  PacketQueue* q = b.kernel()->MakeQueueEndpoint("q", 0);
  b.kernel()->InstallFilter(CompileCatchAllFilter(), 0,
                            DeliveryEndpoint{DeliverKind::kShm, q, nullptr});
  sim.Spawn("tx", a.cpu(), [&] {
    a.kernel()->NetSendFromUser(MakeUdpFrame(a.ip(), b.ip(), 5, 6));
  });
  sim.Run(Seconds(1));
  EXPECT_EQ(wire.frames_dropped(), 1u);
  EXPECT_EQ(b.nic()->rx_frames(), 0u);
}

TEST_F(KernelTest, WireSerializesAtLineRate) {
  // A 1518-byte frame takes (1518+4)*800ns on the wire.
  PacketQueue* q = b.kernel()->MakeQueueEndpoint("q", 0);
  b.kernel()->InstallFilter(CompileCatchAllFilter(), 0,
                            DeliveryEndpoint{DeliverKind::kShm, q, nullptr});
  SimTime t0 = 0;
  sim.Spawn("tx", a.cpu(), [&] {
    t0 = sim.Now();
    a.kernel()->NetSendFromUser(MakeUdpFrame(a.ip(), b.ip(), 5, 6, 1476));
  });
  SimTime arrival = 0;
  sim.Spawn("rx", b.cpu(), [&] {
    Frame f;
    if (q->Pop(&f, sim.Now() + Seconds(1))) {
      arrival = sim.Now();
    }
  });
  sim.Run(Seconds(2));
  ASSERT_GT(arrival, 0);
  EXPECT_GE(arrival - t0, (1518 + 4) * Nanos(800));
}

}  // namespace
}  // namespace psd
