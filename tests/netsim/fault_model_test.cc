// Fault-model unit tests for EthernetSegment: per-class RNG stream
// independence (the regression this file exists for), Gilbert–Elliott
// burstiness, asymmetric partitions with scheduled heal, shaper tail-drop,
// bandwidth scaling, and corruption placement.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/base/bytes.h"
#include "src/netsim/nic.h"
#include "src/obs/journey.h"

namespace psd {
namespace {

// A minimal corruption-eligible frame: unicast IPv4/UDP addressed to host 2.
Frame MakeFrame(size_t payload = 64) {
  Frame f;
  f.resize(kEtherHeaderLen + 20 + 8 + payload, 0xA5);
  MacAddr dst = MacAddr::FromHostId(2);
  std::copy(dst.b.begin(), dst.b.end(), f.begin());
  MacAddr src = MacAddr::FromHostId(1);
  std::copy(src.b.begin(), src.b.end(), f.begin() + 6);
  Store16(f.data() + 12, kEtherTypeIpv4);
  f[kEtherHeaderLen] = 0x45;
  Store16(f.data() + kEtherHeaderLen + 2, static_cast<uint16_t>(20 + 8 + payload));
  f[kEtherHeaderLen + 9] = 17;  // UDP
  return f;
}

class FaultModelTest : public ::testing::Test {
 protected:
  FaultModelTest() : wire(&sim) {
    nic_a = std::make_unique<Nic>(&sim, &cpu_a, "a", NicParams::Lance(prof));
    nic_b = std::make_unique<Nic>(&sim, &cpu_b, "b", NicParams::Lance(prof));
    nic_a->Attach(&wire, MacAddr::FromHostId(1));
    nic_b->Attach(&wire, MacAddr::FromHostId(2));
    // Drain rings on arrival so the 32-frame device buffer never overflows
    // (tests that want the raw frames replace the notify hook).
    nic_a->SetRxNotify([this] {
      while (nic_a->RxPending()) {
        nic_a->RxPop();
      }
    });
    nic_b->SetRxNotify([this] {
      while (nic_b->RxPending()) {
        nic_b->RxPop();
      }
    });
    PacketJourney::Get().Reset();
    DropLedger::Get().Reset();
  }

  // Transmits `n` frames from a, spaced far enough apart that the medium is
  // always free, each with a pre-minted id. Returns the ids in send order.
  std::vector<uint64_t> Blast(int n, SimDuration spacing = Millis(2)) {
    std::vector<uint64_t> ids;
    for (int i = 0; i < n; i++) {
      Frame f = MakeFrame();
      f.pkt_id = PacketJourney::Get().Mint();
      PacketJourney::Get().Hop(f.pkt_id, TraceLayer::kWire, "test/tx", sim.Now(), f.size());
      ids.push_back(f.pkt_id);
      sim.Schedule(static_cast<SimTime>(i) * spacing,
                   [this, f] { wire.Transmit(nic_a.get(), f); });
    }
    sim.Run(static_cast<SimTime>(n) * spacing + Seconds(1));
    return ids;
  }

  std::set<uint64_t> DroppedOf(const std::vector<uint64_t>& ids, DropReason why) {
    std::set<uint64_t> out;
    for (uint64_t id : ids) {
      if (PacketJourney::Get().DispositionOf(id) == PktDisposition::kDropped &&
          PacketJourney::Get().ReasonOf(id) == why) {
        out.insert(id);
      }
    }
    return out;
  }

  MachineProfile prof = MachineProfile::DecStation5000();
  Simulator sim;
  HostCpu cpu_a, cpu_b;
  EthernetSegment wire;
  std::unique_ptr<Nic> nic_a, nic_b;
};

// The pinned regression: every fault class has a private RNG stream, so
// enabling duplication must not change which frames independent loss drops.
// (Before the streams were split, one shared RNG meant every dup draw
// shifted the loss sequence.)
TEST_F(FaultModelTest, DupDoesNotPerturbLossDecisions) {
  constexpr int kFrames = 400;
  constexpr uint64_t kSeed = 77;

  FaultPlan loss_only;
  loss_only.loss_rate = 0.1;
  loss_only.seed = kSeed;
  wire.SetFaults(loss_only);
  std::vector<uint64_t> ids_a = Blast(kFrames);
  std::set<uint64_t> dropped_a = DroppedOf(ids_a, DropReason::kWireFault);
  ASSERT_GT(dropped_a.size(), 0u);
  ASSERT_LT(dropped_a.size(), static_cast<size_t>(kFrames));

  // Same seed, same traffic, but now every carried frame also rolls a dup
  // die (and some frames dup, minting extra ids in between).
  PacketJourney::Get().Reset();
  DropLedger::Get().Reset();
  FaultPlan loss_and_dup = loss_only;
  loss_and_dup.dup_rate = 0.3;
  wire.SetFaults(loss_and_dup);
  std::vector<uint64_t> ids_b = Blast(kFrames);
  std::set<uint64_t> dropped_b = DroppedOf(ids_b, DropReason::kWireFault);

  // Compare by send ordinal: the i-th transmitted frame must meet the same
  // loss fate in both runs.
  std::set<int> ord_a, ord_b;
  for (int i = 0; i < kFrames; i++) {
    if (dropped_a.count(ids_a[i])) {
      ord_a.insert(i);
    }
    if (dropped_b.count(ids_b[i])) {
      ord_b.insert(i);
    }
  }
  EXPECT_EQ(ord_a, ord_b);
}

// Same independence property for the other direction: corruption and delay
// draws must not perturb loss either.
TEST_F(FaultModelTest, CorruptAndDelayDoNotPerturbLossDecisions) {
  constexpr int kFrames = 400;
  FaultPlan base;
  base.loss_rate = 0.08;
  base.seed = 1993;
  wire.SetFaults(base);
  std::vector<uint64_t> ids_a = Blast(kFrames);
  std::set<int> ord_a;
  for (int i = 0; i < kFrames; i++) {
    if (DroppedOf({ids_a[i]}, DropReason::kWireFault).size() == 1) {
      ord_a.insert(i);
    }
  }

  PacketJourney::Get().Reset();
  DropLedger::Get().Reset();
  FaultPlan noisy = base;
  noisy.corrupt_rate = 0.2;
  noisy.delay_rate = 0.15;
  wire.SetFaults(noisy);
  std::vector<uint64_t> ids_b = Blast(kFrames);
  std::set<int> ord_b;
  for (int i = 0; i < kFrames; i++) {
    if (DroppedOf({ids_b[i]}, DropReason::kWireFault).size() == 1) {
      ord_b.insert(i);
    }
  }
  EXPECT_EQ(ord_a, ord_b);
}

// Gilbert–Elliott must produce bursty loss: with loss_good=0 every drop
// happens in the bad state, and bad states persist across frames, so drops
// must cluster into runs — something independent loss at the same average
// rate essentially never does for this many frames.
TEST_F(FaultModelTest, GilbertElliottDropsInBursts) {
  constexpr int kFrames = 600;
  FaultPlan plan;
  plan.burst.enabled = true;
  plan.burst.p_good_to_bad = 0.05;
  plan.burst.p_bad_to_good = 0.3;
  plan.burst.loss_good = 0.0;
  plan.burst.loss_bad = 1.0;
  plan.seed = 42;
  wire.SetFaults(plan);
  std::vector<uint64_t> ids = Blast(kFrames);

  int drops = 0, bursts = 0, longest = 0, run = 0;
  for (uint64_t id : ids) {
    bool dropped = PacketJourney::Get().DispositionOf(id) == PktDisposition::kDropped;
    if (dropped) {
      drops++;
      run++;
      longest = std::max(longest, run);
    } else {
      if (run > 0) {
        bursts++;
      }
      run = 0;
    }
  }
  if (run > 0) {
    bursts++;
  }
  ASSERT_GT(drops, 0);
  // Loss happens (stationary bad-state share ~1/7 of frames)…
  EXPECT_GT(drops, kFrames / 20);
  EXPECT_LT(drops, kFrames / 2);
  // …and it clusters: mean burst length comfortably above 1, with at least
  // one multi-frame fade.
  EXPECT_GT(static_cast<double>(drops) / bursts, 1.2);
  EXPECT_GE(longest, 3);
}

// A partition is one-directional and heals on schedule: a->b frames die
// with kWirePartition during the outage, b->a flows the whole time, and
// a->b delivers again after the heal time.
TEST_F(FaultModelTest, PartitionIsAsymmetricAndHeals) {
  FaultPlan plan;
  plan.partitions.push_back(LinkPartition{0, 1, Millis(0), Millis(100)});
  wire.SetFaults(plan);

  Frame fwd1 = MakeFrame();
  fwd1.pkt_id = PacketJourney::Get().Mint();
  Frame rev = MakeFrame();
  std::swap_ranges(rev.begin(), rev.begin() + 6, rev.begin() + 6);  // b -> a
  rev.pkt_id = PacketJourney::Get().Mint();
  Frame fwd2 = MakeFrame();
  fwd2.pkt_id = PacketJourney::Get().Mint();

  sim.Schedule(Millis(10), [&] { wire.Transmit(nic_a.get(), fwd1); });
  sim.Schedule(Millis(20), [&] { wire.Transmit(nic_b.get(), rev); });
  sim.Schedule(Millis(150), [&] { wire.Transmit(nic_a.get(), fwd2); });
  sim.Run(Seconds(1));

  EXPECT_EQ(PacketJourney::Get().DispositionOf(fwd1.pkt_id), PktDisposition::kDropped);
  EXPECT_EQ(PacketJourney::Get().ReasonOf(fwd1.pkt_id), DropReason::kWirePartition);
  EXPECT_EQ(nic_a->rx_frames(), 1u);  // the reverse frame got through
  EXPECT_EQ(nic_b->rx_frames(), 1u);  // only the post-heal forward frame
  EXPECT_EQ(wire.frames_partitioned(), 1u);
}

// Shaper with a bounded queue tail-drops the overflow before it occupies
// the medium, and the books balance: carried + shaper-dropped == offered.
TEST_F(FaultModelTest, ShaperQueueTailDrops) {
  FaultPlan plan;
  plan.queue_frames = 2;
  plan.bandwidth_scale = 4.0;
  wire.SetFaults(plan);

  constexpr int kOffered = 12;
  for (int i = 0; i < kOffered; i++) {
    Frame f = MakeFrame(1000);
    f.pkt_id = PacketJourney::Get().Mint();
    // All at t=0: way past what a 2-frame backlog admits.
    sim.Schedule(0, [this, f] { wire.Transmit(nic_a.get(), f); });
  }
  sim.Run(Seconds(5));

  EXPECT_GT(wire.frames_shaper_dropped(), 0u);
  EXPECT_GT(wire.frames_carried(), 0u);
  EXPECT_EQ(wire.frames_carried() + wire.frames_shaper_dropped(),
            static_cast<uint64_t>(kOffered));
  EXPECT_EQ(nic_b->rx_frames(), wire.frames_carried());
}

// bandwidth_scale stretches serialization: the same frame takes exactly
// scale× longer to arrive.
TEST_F(FaultModelTest, BandwidthScaleStretchesWireTime) {
  SimTime arrival_1x = 0, arrival_4x = 0;

  Frame f1 = MakeFrame(500);
  f1.pkt_id = PacketJourney::Get().Mint();
  sim.Schedule(0, [&] { wire.Transmit(nic_a.get(), f1); });
  sim.Run(Seconds(1));
  ASSERT_EQ(nic_b->rx_frames(), 1u);
  std::vector<HopEvent> rec = PacketJourney::Get().JourneyOf(f1.pkt_id);
  ASSERT_FALSE(rec.empty());
  arrival_1x = rec.back().at;

  FaultPlan plan;
  plan.bandwidth_scale = 4.0;
  wire.SetFaults(plan);
  Frame f2 = MakeFrame(500);
  f2.pkt_id = PacketJourney::Get().Mint();
  SimTime start = sim.Now();
  sim.Schedule(start, [&] { wire.Transmit(nic_a.get(), f2); });
  sim.Run(start + Seconds(1));
  std::vector<HopEvent> rec2 = PacketJourney::Get().JourneyOf(f2.pkt_id);
  ASSERT_FALSE(rec2.empty());
  arrival_4x = rec2.back().at;

  EXPECT_EQ(arrival_4x - start, 4 * arrival_1x);
}

// Corruption only ever touches the IP datagram of an eligible frame, flips
// at most corrupt_bits bits within one aligned 16-bit word, and books every
// hit in both the segment counter and the ledger.
TEST_F(FaultModelTest, CorruptionFlipsBitsInOneAlignedWord) {
  FaultPlan plan;
  plan.corrupt_rate = 1.0;
  plan.corrupt_bits = 2;
  plan.seed = 7;
  wire.SetFaults(plan);

  constexpr int kFrames = 50;
  Frame pristine = MakeFrame();
  std::vector<Frame> received;
  nic_b->SetRxNotify([&] {
    while (nic_b->RxPending()) {
      received.push_back(nic_b->RxPop());
    }
  });
  for (int i = 0; i < kFrames; i++) {
    Frame f = pristine;
    f.pkt_id = PacketJourney::Get().Mint();
    sim.Schedule(static_cast<SimTime>(i) * Millis(2), [this, f] { wire.Transmit(nic_a.get(), f); });
  }
  sim.Run(Seconds(2));

  ASSERT_EQ(received.size(), static_cast<size_t>(kFrames));
  EXPECT_EQ(wire.frames_corrupted(), static_cast<uint64_t>(kFrames));
  EXPECT_EQ(DropLedger::Get().total(DropReason::kWireCorrupt), static_cast<uint64_t>(kFrames));
  for (const Frame& f : received) {
    ASSERT_EQ(f.size(), pristine.size());
    // Ethernet header untouched.
    EXPECT_TRUE(std::equal(f.begin(), f.begin() + kEtherHeaderLen, pristine.begin()));
    // All differing bits live in one aligned 16-bit word, 1-2 of them.
    int flipped = 0;
    int words_touched = 0;
    for (size_t w = kEtherHeaderLen; w + 1 < f.size(); w += 2) {
      uint16_t diff = static_cast<uint16_t>((f[w] ^ pristine[w]) | ((f[w + 1] ^ pristine[w + 1]))
                                            << 8);
      if (diff != 0) {
        words_touched++;
        flipped += __builtin_popcount(diff);
      }
    }
    EXPECT_EQ(words_touched, 1);
    EXPECT_GE(flipped, 1);
    EXPECT_LE(flipped, 2);
  }
}

// The stored UDP checksum word is never selected for corruption: a flip
// that zeroed it would read as "sender computed no checksum" (RFC 768),
// the receiver would skip validation, and the corrupted datagram would be
// consumed — breaking the injector's detectability guarantee.
TEST_F(FaultModelTest, CorruptionNeverTouchesTheUdpChecksumWord) {
  FaultPlan plan;
  plan.corrupt_rate = 1.0;
  plan.corrupt_bits = 2;
  plan.seed = 3;
  wire.SetFaults(plan);

  // Tiny payload: few eligible words, so an unexcluded checksum word would
  // be hit many times across the run.
  Frame pristine = MakeFrame(2);
  std::vector<Frame> received;
  nic_b->SetRxNotify([&] {
    while (nic_b->RxPending()) {
      received.push_back(nic_b->RxPop());
    }
  });
  constexpr int kFrames = 200;
  for (int i = 0; i < kFrames; i++) {
    Frame f = pristine;
    f.pkt_id = PacketJourney::Get().Mint();
    sim.Schedule(static_cast<SimTime>(i) * Millis(2), [this, f] { wire.Transmit(nic_a.get(), f); });
  }
  sim.Run(Seconds(2));

  ASSERT_EQ(received.size(), static_cast<size_t>(kFrames));
  EXPECT_EQ(wire.frames_corrupted(), static_cast<uint64_t>(kFrames));
  const size_t cksum = kEtherHeaderLen + 20 + 6;  // IHL=5, UDP checksum offset
  for (const Frame& f : received) {
    EXPECT_EQ(f[cksum], pristine[cksum]);
    EXPECT_EQ(f[cksum + 1], pristine[cksum + 1]);
  }
}

// With every class off (the default FaultPlan), the segment is a perfect
// wire: no drops, no corruption, no surprises — the property that keeps
// the bench tables byte-identical.
TEST_F(FaultModelTest, DefaultPlanIsPerfectWire) {
  wire.SetFaults(FaultPlan{});
  Blast(100);
  EXPECT_EQ(wire.frames_carried(), 100u);
  EXPECT_EQ(wire.frames_dropped(), 0u);
  EXPECT_EQ(wire.frames_corrupted(), 0u);
  EXPECT_EQ(wire.frames_reordered(), 0u);
  EXPECT_EQ(wire.frames_partitioned(), 0u);
  EXPECT_EQ(wire.frames_shaper_dropped(), 0u);
  EXPECT_EQ(nic_b->rx_frames(), 100u);
}

}  // namespace
}  // namespace psd
