// Holds the frame and mbuf pools to their recycling contracts:
//  * a reissued buffer carries nothing from its previous life — no stale
//    payload bytes, no stale packet-journey id;
//  * copies round-trip bytes exactly;
//  * hit/miss/live/high-watermark counters move the way dashboards expect;
//  * parked inventory is bounded.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/mbuf/mbuf.h"
#include "src/netsim/ether.h"
#include "src/netsim/frame_pool.h"
#include "src/obs/stats.h"
#include "src/testbed/world.h"

namespace psd {
namespace {

class PoolLifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FramePool::ResetForTest();
    MbufPool::ResetForTest();
  }
};

TEST_F(PoolLifecycleTest, RecycledFrameCarriesNoStalePayload) {
  {
    Frame f = Frame::OfSize(FramePool::kMtuBytes);
    EXPECT_EQ(FramePool::misses(), 1u);  // cold pool
    std::memset(f.data(), 0xAB, f.size());
    f.pkt_id = 777;
  }  // recycled here
  EXPECT_EQ(FramePool::recycles(), 1u);
  EXPECT_EQ(FramePool::parked(), 1u);

  Frame g = Frame::OfSize(200);  // same size class: must reuse the buffer
  EXPECT_EQ(FramePool::hits(), 1u);
  EXPECT_EQ(g.pkt_id, 0u) << "pkt_id must never travel with recycled storage";
  for (uint8_t b : g) {
    ASSERT_EQ(b, 0u) << "stale payload leaked through the pool";
  }
}

TEST_F(PoolLifecycleTest, CopyRoundTripsBytesAndPktId) {
  Frame src = Frame::OfSize(64);
  for (size_t i = 0; i < src.size(); i++) {
    src[i] = static_cast<uint8_t>(i * 7);
  }
  src.pkt_id = 42;
  Frame copy(src);
  EXPECT_EQ(copy.pkt_id, 42u);
  ASSERT_EQ(copy.size(), src.size());
  EXPECT_EQ(0, std::memcmp(copy.data(), src.data(), src.size()));
}

TEST_F(PoolLifecycleTest, SteadyStateChurnIsAllHits) {
  // Warm the pool, then hammer one size class: after the first allocation
  // every acquire must be a hit and live never exceeds the working set.
  for (int i = 0; i < 100; i++) {
    Frame f = Frame::OfSize(1000);
    (void)f;
  }
  EXPECT_EQ(FramePool::misses(), 1u);
  EXPECT_EQ(FramePool::hits(), 99u);
  EXPECT_EQ(FramePool::live(), 0u);
  EXPECT_EQ(FramePool::high_watermark(), 1u);
  EXPECT_LE(FramePool::parked(), FramePool::kMaxParkedPerClass);
}

TEST_F(PoolLifecycleTest, HighWatermarkTracksPeakWorkingSet) {
  {
    std::vector<Frame> burst;
    for (int i = 0; i < 10; i++) {
      burst.push_back(Frame::OfSize(100));
    }
    EXPECT_EQ(FramePool::live(), 10u);
  }
  EXPECT_EQ(FramePool::live(), 0u);
  EXPECT_EQ(FramePool::high_watermark(), 10u);
  EXPECT_EQ(FramePool::parked(), 10u);
}

TEST_F(PoolLifecycleTest, RecycledClusterIsRezeroed) {
  {
    auto m = Mbuf::GetCluster();
    EXPECT_EQ(MbufPool::cluster_misses(), 1u);
    std::memset(m->AppendInPlace(512), 0xCD, 512);
  }  // last reference: cluster parks
  EXPECT_EQ(MbufPool::parked_clusters(), 1u);

  auto m2 = Mbuf::GetCluster();
  EXPECT_EQ(MbufPool::cluster_hits(), 1u);
  const uint8_t* p = m2->AppendInPlace(512);
  for (size_t i = 0; i < 512; i++) {
    ASSERT_EQ(p[i], 0u) << "recycled cluster leaked bytes at " << i;
  }
}

TEST_F(PoolLifecycleTest, SharedClusterOnlyParksAtLastReference) {
  auto m = Mbuf::GetCluster();
  m->AppendInPlace(64);
  auto shared = m->ShareCopy(0, 64);
  ASSERT_TRUE(shared->shared());
  m.reset();  // cluster still referenced by `shared`
  EXPECT_EQ(MbufPool::parked_clusters(), 0u);
  shared.reset();  // last reference
  EXPECT_EQ(MbufPool::parked_clusters(), 1u);
  EXPECT_EQ(MbufPool::live_clusters(), 0u);
}

TEST_F(PoolLifecycleTest, MbufObjectsComeFromFreelist) {
  { auto m = Mbuf::Get(); (void)m; }
  EXPECT_EQ(MbufPool::mbuf_misses(), 1u);
  EXPECT_EQ(MbufPool::parked_mbufs(), 1u);
  { auto m = Mbuf::Get(); (void)m; }
  EXPECT_EQ(MbufPool::mbuf_hits(), 1u);
  EXPECT_EQ(MbufPool::live_mbufs(), 0u);
  EXPECT_EQ(MbufPool::mbuf_high_watermark(), 1u);
}

TEST_F(PoolLifecycleTest, GaugesExportedAndMoveUnderTrafficChurn) {
  // The engine.* gauges must be reachable through the registry and must
  // have moved after real traffic: a UDP exchange through the full kernel
  // delivery path copies frames and builds mbuf chains on both hosts.
  World w(Config::kInKernel, MachineProfile::DecStation5000());
  StatsRegistry reg;
  w.ExportEngineStats(&reg);
  w.SpawnApp(1, "sink", [&] {
    SocketApi* api = w.api(1);
    int fd = *api->CreateSocket(IpProto::kUdp);
    ASSERT_TRUE(api->Bind(fd, SockAddrIn{Ipv4Addr::Any(), 9000}).ok());
    uint8_t buf[2048];
    for (int i = 0; i < 32; i++) {
      api->Recv(fd, buf, sizeof(buf), nullptr, false);
    }
    api->Close(fd);
  });
  w.SpawnApp(0, "blaster", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kUdp);
    SockAddrIn dst{w.addr(1), 9000};
    std::vector<uint8_t> payload(512, 0x5A);
    w.sim().current_thread()->SleepFor(Millis(10));
    for (int i = 0; i < 32; i++) {
      api->Send(fd, payload.data(), payload.size(), &dst);
    }
    api->Close(fd);
  });
  w.sim().Run(Seconds(10));

  std::map<std::string, uint64_t> snap;
  for (const StatsRegistry::Entry& e : reg.Snapshot()) {
    snap[e.name] = e.value;
  }
  ASSERT_TRUE(snap.count("engine.frame_pool.high_watermark"));
  ASSERT_TRUE(snap.count("engine.mbuf_pool.cluster_high_watermark"));
  EXPECT_GT(snap["engine.frame_pool.hits"], 0u) << "traffic never reused a pooled frame";
  EXPECT_GT(snap["engine.frame_pool.high_watermark"], 0u);
  EXPECT_GT(snap["engine.mbuf_pool.mbuf_hits"], 0u);
  EXPECT_GT(snap["engine.events_executed"], 0u);
  EXPECT_EQ(snap["engine.past_time_clamps"], 0u) << "traffic scheduled events into the past";
  reg.Reset();  // gauges capture &w.sim(): drop them before the World dies
}

TEST_F(PoolLifecycleTest, ChainChurnStaysBounded) {
  // Build and destroy packet-sized chains; the pool inventory must stay
  // within its caps and the live gauges must return to zero.
  for (int round = 0; round < 50; round++) {
    Chain c;
    std::vector<uint8_t> payload(3000, static_cast<uint8_t>(round));
    c = Chain::FromBytes(payload.data(), payload.size());
    Frame f = Frame::OfSize(c.len());
    c.CopyOut(0, f.data(), f.size());
    EXPECT_EQ(f[100], static_cast<uint8_t>(round));
  }
  EXPECT_EQ(MbufPool::live_mbufs(), 0u);
  EXPECT_EQ(MbufPool::live_clusters(), 0u);
  EXPECT_EQ(FramePool::live(), 0u);
  EXPECT_LE(MbufPool::parked_mbufs(), MbufPool::kMaxParkedMbufs);
  EXPECT_LE(MbufPool::parked_clusters(), MbufPool::kMaxParkedClusters);
}

}  // namespace
}  // namespace psd
