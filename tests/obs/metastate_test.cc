// MetastateLedger unit tests: event counting, the runtime kill switch,
// per-phase histograms, the stats-registry export surface, and the Reset
// contract. The ledger is a process-wide singleton, so every test starts
// and ends from a Reset() state.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/metastate.h"
#include "src/obs/stats.h"

namespace psd {
namespace {

class MetastateTest : public ::testing::Test {
 protected:
  void SetUp() override { MetastateLedger::Get().Reset(); }
  void TearDown() override { MetastateLedger::Get().Reset(); }
};

TEST_F(MetastateTest, EveryEventHasAUniqueStableName) {
  std::vector<std::string> seen;
  for (size_t i = 0; i < static_cast<size_t>(MetaEvent::kNumEvents); i++) {
    std::string name = MetaEventName(static_cast<MetaEvent>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(name.find(' '), std::string::npos) << name << " is not kebab-case";
    for (const std::string& prev : seen) {
      EXPECT_NE(name, prev) << "duplicate event name";
    }
    seen.push_back(name);
  }
  EXPECT_STREQ(MetaEventName(MetaEvent::kPortAcquire), "port-acquire");
  EXPECT_STREQ(MetaEventName(MetaEvent::kArpGratuitous), "arp-gratuitous");
  EXPECT_STREQ(MetaEventName(MetaEvent::kMigrationIn), "migration-in");
}

TEST_F(MetastateTest, EveryPhaseHasAUniqueStableName) {
  std::vector<std::string> seen;
  for (size_t i = 0; i < static_cast<size_t>(MigrationPhase::kNumPhases); i++) {
    std::string name = MigrationPhaseName(static_cast<MigrationPhase>(i));
    EXPECT_FALSE(name.empty());
    for (const std::string& prev : seen) {
      EXPECT_NE(name, prev) << "duplicate phase name";
    }
    seen.push_back(name);
  }
  EXPECT_STREQ(MigrationPhaseName(MigrationPhase::kFreeze), "freeze");
  EXPECT_STREQ(MigrationPhaseName(MigrationPhase::kResume), "resume");
}

#ifndef PSD_OBS_DISABLE_METASTATE

TEST_F(MetastateTest, CountAccumulatesPerEvent) {
  MetastateLedger& m = MetastateLedger::Get();
  m.Count(MetaEvent::kArpMiss);
  m.Count(MetaEvent::kArpMiss);
  m.Count(MetaEvent::kRouteLookup, 10);
  EXPECT_EQ(m.total(MetaEvent::kArpMiss), 2u);
  EXPECT_EQ(m.total(MetaEvent::kRouteLookup), 10u);
  EXPECT_EQ(m.total(MetaEvent::kArpHit), 0u);
}

TEST_F(MetastateTest, KillSwitchStopsCountingAndPhases) {
  MetastateLedger& m = MetastateLedger::Get();
  m.set_enabled(false);
  m.Count(MetaEvent::kPortAcquire);
  m.RecordPhase(MigrationPhase::kFreeze, Micros(5));
  EXPECT_EQ(m.total(MetaEvent::kPortAcquire), 0u);
  EXPECT_EQ(m.phase(MigrationPhase::kFreeze).count(), 0u);
  m.set_enabled(true);
  m.Count(MetaEvent::kPortAcquire);
  EXPECT_EQ(m.total(MetaEvent::kPortAcquire), 1u);
}

TEST_F(MetastateTest, PhasesRecordIntoIndependentHistograms) {
  MetastateLedger& m = MetastateLedger::Get();
  m.RecordPhase(MigrationPhase::kFreeze, Micros(100));
  m.RecordPhase(MigrationPhase::kFreeze, Micros(300));
  m.RecordPhase(MigrationPhase::kTransfer, Millis(2));
  EXPECT_EQ(m.phase(MigrationPhase::kFreeze).count(), 2u);
  EXPECT_EQ(m.phase(MigrationPhase::kFreeze).max(), Micros(300));
  EXPECT_EQ(m.phase(MigrationPhase::kTransfer).count(), 1u);
  EXPECT_EQ(m.phase(MigrationPhase::kEncode).count(), 0u);
}

TEST_F(MetastateTest, ExportRegistersEveryEventAndPhaseGauge) {
  MetastateLedger& m = MetastateLedger::Get();
  m.Count(MetaEvent::kFilterInstall, 3);
  m.RecordPhase(MigrationPhase::kInstall, Micros(7));

  StatsRegistry reg;
  m.ExportStats(&reg, "meta.");
  EXPECT_EQ(reg.duplicates_rejected(), 0u);
  EXPECT_EQ(reg.size(), static_cast<size_t>(MetaEvent::kNumEvents) +
                            static_cast<size_t>(MigrationPhase::kNumPhases));

  uint64_t filter_install = 0;
  uint64_t install_count = 0;
  for (const StatsRegistry::Entry& e : reg.Snapshot()) {
    if (e.name == "meta.filter-install") {
      filter_install = e.value;
    }
    if (e.name == "meta.migration.install.count") {
      install_count = e.value;
    }
  }
  EXPECT_EQ(filter_install, 3u);
  EXPECT_EQ(install_count, 1u);
  reg.Reset();
}

TEST_F(MetastateTest, ResetZeroesTotalsAndPhases) {
  MetastateLedger& m = MetastateLedger::Get();
  m.Count(MetaEvent::kPortRelease, 5);
  m.RecordPhase(MigrationPhase::kResume, Micros(9));
  m.Reset();
  for (size_t i = 0; i < static_cast<size_t>(MetaEvent::kNumEvents); i++) {
    EXPECT_EQ(m.total(static_cast<MetaEvent>(i)), 0u);
  }
  for (size_t i = 0; i < static_cast<size_t>(MigrationPhase::kNumPhases); i++) {
    EXPECT_EQ(m.phase(static_cast<MigrationPhase>(i)).count(), 0u);
  }
  EXPECT_TRUE(m.enabled()) << "Reset must re-arm the ledger";
}

#endif  // PSD_OBS_DISABLE_METASTATE

}  // namespace
}  // namespace psd
