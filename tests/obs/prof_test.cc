// HostProfiler unit tests: domain taxonomy, nested-scope exclusive
// attribution, scope counts, collapsed-stack flame paths, per-fiber
// attribution through real simulator fibers, stats export, renderer
// grammar, and the zero-perturbation contract (an attached profiler must
// not move any virtual quantity of an engine workload).
//
// Host-time assertions use generous floors (spin 400us, assert >= 100us)
// so the tests stay robust on loaded CI machines: the profiler's claim is
// attribution, not nanosecond precision.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <set>
#include <string>

#include "bench/common/engine_workloads.h"
#include "src/cost/machine_profile.h"
#include "src/obs/prof.h"
#include "src/obs/stats.h"
#include "src/sim/simulator.h"

namespace psd {
namespace {

#ifndef PSD_OBS_DISABLE_PROF

// Busy-spins for roughly `us` host microseconds so open scopes accrue
// real, attributable time.
void Spin(int us) {
  auto until = std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

double DomainNs(const HostProfReport& r, ProfDomain d) {
  for (const auto& row : r.domains) {
    if (row.domain == d) {
      return row.total_ns;
    }
  }
  return 0;
}

uint64_t DomainCount(const HostProfReport& r, ProfDomain d) {
  for (const auto& row : r.domains) {
    if (row.domain == d) {
      return row.count;
    }
  }
  return 0;
}

double StackNs(const HostProfReport& r, const std::string& path) {
  for (const auto& kv : r.stacks) {
    if (kv.first == path) {
      return kv.second;
    }
  }
  return -1;
}

TEST(HostProf, DomainNamesAreUniqueAndStable) {
  std::set<std::string> seen;
  for (int i = 0; i < static_cast<int>(ProfDomain::kNumDomains); i++) {
    const char* n = ProfDomainName(static_cast<ProfDomain>(i));
    ASSERT_NE(n, nullptr) << "domain " << i;
    EXPECT_TRUE(seen.insert(n).second) << "duplicate domain name: " << n;
  }
  // Names other tools key on (bench_diff direction heuristics, flame roots).
  EXPECT_STREQ(ProfDomainName(ProfDomain::kOther), "other");
  EXPECT_STREQ(ProfDomainName(ProfDomain::kSimSched), "sim.sched");
  EXPECT_STREQ(ProfDomainName(ProfDomain::kFiberSwap), "fiber.swap");
  EXPECT_STREQ(ProfDomainName(ProfDomain::kFiberRun), "fiber.run");
}

TEST(HostProf, NestedScopesAccrueExclusiveTime) {
  HostProfiler& p = HostProfiler::Get();
  p.Start();
  {
    ProfScope outer(ProfDomain::kIpcPort);
    Spin(400);
    {
      ProfScope inner(ProfDomain::kCoreRpc);
      Spin(400);
    }
    Spin(400);
  }
  p.Stop();
  HostProfReport r = p.Snapshot();
  ASSERT_TRUE(r.enabled);
  // Exclusive semantics: outer spun ~800us outside the inner scope, inner
  // ~400us. Inner time must NOT also be charged to outer.
  double outer_ns = DomainNs(r, ProfDomain::kIpcPort);
  double inner_ns = DomainNs(r, ProfDomain::kCoreRpc);
  EXPECT_GE(inner_ns, 100e3);
  EXPECT_GE(outer_ns, 200e3);
  EXPECT_LT(outer_ns + inner_ns, r.wall_ns * 1.01);
  // Everything lands somewhere: wall >= attributed + other, remainder >= 0.
  EXPECT_GE(r.unattributed_ns, 0.0);
  EXPECT_GE(r.wall_ns, r.attributed_ns + r.other_ns - 1.0);
}

TEST(HostProf, ScopeEntriesAreCounted) {
  HostProfiler& p = HostProfiler::Get();
  p.Start();
  for (int i = 0; i < 5; i++) {
    ProfScope s(ProfDomain::kApp);
  }
  p.Stop();
  EXPECT_EQ(DomainCount(p.Snapshot(), ProfDomain::kApp), 5u);
}

TEST(HostProf, CollapsedStacksFollowNesting) {
  HostProfiler& p = HostProfiler::Get();
  p.Start();
  {
    ProfScope a(ProfDomain::kIpcPort);
    Spin(300);
    {
      ProfScope b(ProfDomain::kCoreRpc);
      Spin(300);
    }
  }
  p.Stop();
  HostProfReport r = p.Snapshot();
  // Base-context root is "other"; nested scopes extend the path.
  EXPECT_GT(StackNs(r, "other;ipc.port"), 0.0);
  EXPECT_GT(StackNs(r, "other;ipc.port;core.rpc"), 0.0);
  EXPECT_EQ(StackNs(r, "other;core.rpc"), -1.0) << "inner scope leaked out of its parent path";
}

TEST(HostProf, FibersAttributeByNormalizedName) {
  HostProfiler& p = HostProfiler::Get();
  p.Start();
  Simulator sim;
  HostCpu cpu;
  for (int i = 0; i < 3; i++) {
    sim.Spawn("h0/worker" + std::to_string(i), &cpu, [&] {
      Spin(200);
      sim.current_thread()->SleepFor(Millis(1));
      Spin(200);
    });
  }
  sim.Run();
  p.Stop();
  HostProfReport r = p.Snapshot();
  // "h0/worker0..2" all normalize to "worker*" and aggregate.
  double worker_ns = 0;
  bool has_main = false;
  for (const auto& kv : r.fibers) {
    if (kv.first == "worker*") {
      worker_ns = kv.second;
    }
    if (kv.first == "(main)") {
      has_main = true;
    }
  }
  EXPECT_GE(worker_ns, 3 * 200e3) << "fiber spin time not attributed to the fiber";
  EXPECT_TRUE(has_main);
  // The sleep forces real context switches: swap edges and fiber bodies
  // must both show up in the domain table.
  EXPECT_GT(DomainNs(r, ProfDomain::kFiberSwap), 0.0);
  EXPECT_GT(DomainNs(r, ProfDomain::kFiberRun), 0.0);
  EXPECT_GT(DomainCount(r, ProfDomain::kFiberSwap), 0u);
}

TEST(HostProf, ExportStatsRegistersGauges) {
  HostProfiler& p = HostProfiler::Get();
  p.Start();
  {
    ProfScope s(ProfDomain::kApp);
    Spin(200);
  }
  p.Stop();
  StatsRegistry reg;
  p.ExportStats(&reg, "prof.");
  std::set<std::string> names;
  uint64_t app_ns = 0;
  uint64_t wall_ns = 0;
  for (const auto& e : reg.Snapshot()) {
    names.insert(e.name);
    if (e.name == "prof.app") {
      app_ns = e.value;
    }
    if (e.name == "prof.wall_ns") {
      wall_ns = e.value;
    }
  }
  ASSERT_TRUE(names.count("prof.wall_ns"));
  ASSERT_TRUE(names.count("prof.app"));
  EXPECT_GT(app_ns, 0u);
  EXPECT_GE(wall_ns, app_ns);
}

TEST(HostProf, RendererGrammar) {
  HostProfiler& p = HostProfiler::Get();
  p.Start();
  {
    ProfScope a(ProfDomain::kIpcPort);
    Spin(200);
    ProfScope b(ProfDomain::kCoreRpc);
    Spin(200);
  }
  p.Stop();
  HostProfReport r = p.Snapshot();

  std::string table = RenderHostProfTable(r);
  EXPECT_NE(table.find("ipc.port"), std::string::npos);
  EXPECT_NE(table.find("core.rpc"), std::string::npos);

  // Flame lines: "path;path;... <integer-ns>\n", no empty paths.
  std::string flame = RenderHostProfFlame(r);
  ASSERT_FALSE(flame.empty());
  size_t pos = 0;
  int lines = 0;
  while (pos < flame.size()) {
    size_t nl = flame.find('\n', pos);
    ASSERT_NE(nl, std::string::npos) << "flame output must end in newline";
    std::string line = flame.substr(pos, nl - pos);
    size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    ASSERT_GT(sp, 0u) << line;
    std::string count = line.substr(sp + 1);
    ASSERT_FALSE(count.empty()) << line;
    for (char c : count) {
      ASSERT_TRUE(c >= '0' && c <= '9') << "non-integer flame count: " << line;
    }
    lines++;
    pos = nl + 1;
  }
  EXPECT_GE(lines, 2);

  std::string json = RenderHostProfJson(r);
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"attributed_pct\""), std::string::npos);
  std::string frag = HostProfileJsonFragment(r);
  EXPECT_EQ(frag.front(), '{');
  EXPECT_NE(frag.find("\"domains\""), std::string::npos);
}

TEST(HostProf, ZeroPerturbationOnEngineWorkload) {
  MachineProfile mp = MachineProfile::DecStation5000();
  EngineRunOutcome off = RunEngineUdpBlast(mp, 0.05);
  HostProfiler& p = HostProfiler::Get();
  p.Start();
  EngineRunOutcome on = RunEngineUdpBlast(mp, 0.05);
  p.Stop();
  HostProfReport r = p.Snapshot();
  ASSERT_TRUE(r.enabled);
  // Hooks were live through a full World (scheduler, fibers, NIC, stack) —
  // and every virtual quantity is bit-identical to the unprofiled run.
  EXPECT_GT(r.attributed_pct(), 50.0);
  EXPECT_EQ(off.frames, on.frames);
  EXPECT_EQ(off.events, on.events);
  EXPECT_EQ(off.switches, on.switches);
  EXPECT_EQ(off.virtual_end, on.virtual_end);
}

#else  // PSD_OBS_DISABLE_PROF

TEST(HostProf, DisabledBuildReportsDisabled) {
  HostProfiler::Get().Start();
  HostProfReport r = HostProfiler::Get().Snapshot();
  HostProfiler::Get().Stop();
  EXPECT_FALSE(r.enabled);
  EXPECT_FALSE(HostProfiler::enabled());
}

#endif  // PSD_OBS_DISABLE_PROF

}  // namespace
}  // namespace psd
