// Pcap golden tests: a struct-level checker for the libpcap file format
// (magic, version, linktype, record framing) plus an end-to-end capture
// whose packet counts must agree with the wire and kernel delivery stats.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common/workloads.h"
#include "src/obs/pcap.h"
#include "src/obs/stats.h"

namespace psd {
namespace {

uint32_t ReadU32(const std::string& b, size_t off) {
  return static_cast<uint32_t>(static_cast<uint8_t>(b[off])) |
         static_cast<uint32_t>(static_cast<uint8_t>(b[off + 1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(b[off + 2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(b[off + 3])) << 24;
}

uint16_t ReadU16(const std::string& b, size_t off) {
  return static_cast<uint16_t>(static_cast<uint8_t>(b[off]) |
                               static_cast<uint8_t>(b[off + 1]) << 8);
}

struct ParsedRecord {
  uint64_t ts_micros = 0;
  uint32_t incl_len = 0;
  uint32_t orig_len = 0;
  size_t data_off = 0;
};

// Parses the whole file, asserting on structural corruption; returns the
// record table.
std::vector<ParsedRecord> CheckPcap(const std::string& b) {
  EXPECT_GE(b.size(), 24u) << "truncated global header";
  EXPECT_EQ(ReadU32(b, 0), PcapCapture::kMagicMicros);
  EXPECT_EQ(ReadU16(b, 4), PcapCapture::kVersionMajor);
  EXPECT_EQ(ReadU16(b, 6), PcapCapture::kVersionMinor);
  EXPECT_EQ(ReadU32(b, 8), 0u);   // thiszone
  EXPECT_EQ(ReadU32(b, 12), 0u);  // sigfigs
  EXPECT_EQ(ReadU32(b, 16), PcapCapture::kSnapLen);
  EXPECT_EQ(ReadU32(b, 20), PcapCapture::kLinktypeEthernet);

  std::vector<ParsedRecord> recs;
  size_t off = 24;
  while (off < b.size()) {
    EXPECT_GE(b.size() - off, 16u) << "truncated record header at " << off;
    ParsedRecord r;
    r.ts_micros = static_cast<uint64_t>(ReadU32(b, off)) * 1000000 + ReadU32(b, off + 4);
    r.incl_len = ReadU32(b, off + 8);
    r.orig_len = ReadU32(b, off + 12);
    r.data_off = off + 16;
    EXPECT_EQ(r.incl_len, r.orig_len) << "snaplen never truncates simulated frames";
    EXPECT_GE(b.size() - r.data_off, r.incl_len) << "truncated record body";
    recs.push_back(r);
    off = r.data_off + r.incl_len;
  }
  EXPECT_EQ(off, b.size());
  return recs;
}

TEST(Pcap, WritesValidFileStructure) {
  PcapCapture cap;
  std::vector<uint8_t> f1(60, 0xab);
  std::vector<uint8_t> f2(1514, 0x5a);
  cap.Capture(Seconds(1) + Micros(250), f1.data(), f1.size());
  cap.CaptureFrame(Seconds(2), f2);
  EXPECT_EQ(cap.packet_count(), 2u);
  EXPECT_EQ(cap.byte_count(), f1.size() + f2.size());

  std::ostringstream os;
  cap.WriteTo(os);
  std::string bytes = os.str();
  std::vector<ParsedRecord> recs = CheckPcap(bytes);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].ts_micros, 1000250u);
  EXPECT_EQ(recs[0].incl_len, 60u);
  EXPECT_EQ(recs[1].ts_micros, 2000000u);
  EXPECT_EQ(recs[1].incl_len, 1514u);
  // Payload bytes round-trip exactly.
  EXPECT_EQ(static_cast<uint8_t>(bytes[recs[0].data_off]), 0xab);
  EXPECT_EQ(static_cast<uint8_t>(bytes[recs[1].data_off + 1513]), 0x5a);
}

TEST(Pcap, WriteFileFailsOnBadPath) {
  PcapCapture cap;
  std::vector<uint8_t> f(64, 1);
  cap.CaptureFrame(0, f);
  EXPECT_FALSE(cap.WriteFile("/nonexistent-dir/x/y.pcap"));
}

TEST(Pcap, WireAndKernelTapsMatchStats) {
  PcapCapture wire_cap;
  PcapCapture kern_cap;
  // Counts and capture sizes are compared at the same virtual instant
  // (on_done) — the taps keep capturing the TCP close handshake afterwards.
  uint64_t frames_carried = 0;
  uint64_t rx_delivered = 0;
  size_t wire_packets_at_done = 0;
  size_t kern_packets_at_done = 0;
  ProtolatHooks hooks;
  hooks.on_world = [&](World& w) {
    w.AttachWirePcap(&wire_cap);
    w.AttachKernelPcap(0, &kern_cap);
    w.AttachKernelPcap(1, &kern_cap);
  };
  hooks.on_done = [&](World& w) {
    frames_carried = w.wire().frames_carried();
    wire_packets_at_done = wire_cap.packet_count();
    kern_packets_at_done = kern_cap.packet_count();
    StatsRegistry reg;
    w.ExportStats(0, &reg);
    w.ExportStats(1, &reg);
    for (const auto& e : reg.Snapshot()) {
      if (e.name == "h0.kern.rx_delivered" || e.name == "h1.kern.rx_delivered") {
        rx_delivered += e.value;
      }
    }
    reg.Reset();
  };
  ProtolatOptions opt;
  opt.proto = IpProto::kTcp;
  opt.msg_size = 100;
  opt.trials = 5;
  ASSERT_GT(RunProtolatTraced(Config::kInKernel, MachineProfile::DecStation5000(), opt, hooks),
            0.0);

  // The wire tap sees exactly the frames the segment carried; the kernel
  // tap sees exactly the frames delivered to a matched endpoint.
  EXPECT_GT(frames_carried, 0u);
  EXPECT_EQ(wire_packets_at_done, frames_carried);
  EXPECT_GT(rx_delivered, 0u);
  EXPECT_EQ(kern_packets_at_done, rx_delivered);
  // The close handshake after on_done only ever adds records.
  EXPECT_GE(wire_cap.packet_count(), wire_packets_at_done);
  EXPECT_GE(kern_cap.packet_count(), kern_packets_at_done);

  // Both captures are structurally valid with monotone virtual timestamps.
  for (const PcapCapture* cap : {&wire_cap, &kern_cap}) {
    std::ostringstream os;
    cap->WriteTo(os);
    std::vector<ParsedRecord> recs = CheckPcap(os.str());
    ASSERT_EQ(recs.size(), cap->packet_count());
    uint64_t total = 0;
    for (size_t i = 0; i < recs.size(); i++) {
      total += recs[i].incl_len;
      EXPECT_EQ(recs[i].incl_len, cap->record_len(i));
      if (i > 0) {
        EXPECT_GE(recs[i].ts_micros, recs[i - 1].ts_micros) << "timestamps must not go backwards";
      }
    }
    EXPECT_EQ(total, cap->byte_count());
    // Every captured frame is at least an Ethernet header.
    for (size_t i = 0; i < recs.size(); i++) {
      EXPECT_GE(recs[i].incl_len, static_cast<uint32_t>(kEtherHeaderLen));
    }
  }
}

}  // namespace
}  // namespace psd
