// LatencyHistogram / HistogramSink unit tests: bucketing, quantile
// behaviour, and the sink's span/instant aggregation.
#include <gtest/gtest.h>

#include "src/obs/histogram.h"

namespace psd {
namespace {

TEST(LatencyHistogram, EmptyIsAllZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.Quantile(0.5), 0);
  EXPECT_EQ(h.MeanMicros(), 0.0);
}

TEST(LatencyHistogram, TracksCountMinMaxMean) {
  LatencyHistogram h;
  h.Record(Micros(10));
  h.Record(Micros(20));
  h.Record(Micros(30));
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), Micros(10));
  EXPECT_EQ(h.max(), Micros(30));
  EXPECT_DOUBLE_EQ(h.MeanMicros(), 20.0);
}

TEST(LatencyHistogram, IdenticalSamplesCollapseAllQuantiles) {
  // Interpolation clamps to the recorded extremes, so a constant
  // distribution reports that constant at every quantile.
  LatencyHistogram h;
  for (int i = 0; i < 100; i++) {
    h.Record(Micros(50));
  }
  EXPECT_EQ(h.Quantile(0.50), Micros(50));
  EXPECT_EQ(h.Quantile(0.90), Micros(50));
  EXPECT_EQ(h.Quantile(0.99), Micros(50));
}

TEST(LatencyHistogram, QuantilesAreMonotoneAndBracketedByExtremes) {
  LatencyHistogram h;
  for (int i = 1; i <= 1000; i++) {
    h.Record(Micros(i));
  }
  SimDuration prev = h.Quantile(0.0);
  EXPECT_EQ(prev, Micros(1));
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    SimDuration v = h.Quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    prev = v;
  }
  EXPECT_EQ(h.Quantile(1.0), Micros(1000));
  // Log-bucket relative error: p50 of U[1us,1000us] must land within a
  // factor of two of the true median.
  double p50 = h.QuantileMicros(0.50);
  EXPECT_GT(p50, 250.0);
  EXPECT_LT(p50, 1000.0);
}

TEST(LatencyHistogram, NegativeDurationsClampToZeroBucket) {
  LatencyHistogram h;
  h.Record(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.bucket(0), 1u);
}

TEST(LatencyHistogram, ResetClearsEverything) {
  LatencyHistogram h;
  h.Record(Micros(7));
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
  for (int i = 0; i < LatencyHistogram::kBuckets; i++) {
    EXPECT_EQ(h.bucket(i), 0u);
  }
}

TEST(LatencyHistogram, SingleBucketInterpolationStaysInsideBucketBounds) {
  // 4096ns..8191ns all land in one log2 bucket. Interior quantiles must
  // interpolate within [min, max] of that bucket, never jump to a bucket
  // edge outside the recorded range.
  LatencyHistogram h;
  for (SimDuration d = 4096; d < 8192; d += 64) {
    h.Record(d);
  }
  EXPECT_EQ(h.Quantile(0.0), 4096);
  EXPECT_EQ(h.Quantile(1.0), 8128);
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
    SimDuration v = h.Quantile(q);
    EXPECT_GE(v, h.min()) << "q=" << q;
    EXPECT_LE(v, h.max()) << "q=" << q;
  }
  // The median of a uniform fill should sit near the bucket's middle, not
  // at either edge.
  EXPECT_GT(h.Quantile(0.5), 4500);
  EXPECT_LT(h.Quantile(0.5), 7800);
}

TEST(LatencyHistogram, MergeOfEmptyIsIdentity) {
  LatencyHistogram a;
  LatencyHistogram empty;
  a.Record(Micros(10));
  a.Record(Micros(90));
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), Micros(10));
  EXPECT_EQ(a.max(), Micros(90));
  EXPECT_EQ(a.total(), Micros(100));

  // Merging into an empty histogram copies the other exactly.
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.min(), Micros(10));
  EXPECT_EQ(empty.max(), Micros(90));
}

TEST(LatencyHistogram, MergeEqualsRecordingEverySampleHere) {
  // The per-worker-recorder contract: merging N recorders must be
  // indistinguishable from one recorder that saw every sample.
  LatencyHistogram merged;
  LatencyHistogram direct;
  LatencyHistogram workers[4];
  for (int w = 0; w < 4; w++) {
    for (int i = 1; i <= 250; i++) {
      SimDuration d = Micros(w * 250 + i);
      workers[w].Record(d);
      direct.Record(d);
    }
  }
  for (const LatencyHistogram& w : workers) {
    merged.Merge(w);
  }
  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.min(), direct.min());
  EXPECT_EQ(merged.max(), direct.max());
  EXPECT_EQ(merged.total(), direct.total());
  for (int i = 0; i < LatencyHistogram::kBuckets; i++) {
    EXPECT_EQ(merged.bucket(i), direct.bucket(i)) << "bucket " << i;
  }
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(merged.Quantile(q), direct.Quantile(q)) << "q=" << q;
  }
}

TEST(HistogramSink, AggregatesSpansByNameAndCountsInstants) {
  HistogramSink sink;
  TraceSpanData span;
  span.name = "rpc";
  span.dur = Micros(100);
  sink.OnSpan(span);
  span.dur = Micros(300);
  sink.OnSpan(span);
  span.name = "copy";
  span.dur = Micros(5);
  sink.OnSpan(span);
  sink.OnInstant("tcp/rexmit", TraceLayer::kInet, 0, nullptr, 1);
  sink.OnInstant("tcp/rexmit", TraceLayer::kInet, 0, nullptr, 2);

  const LatencyHistogram* rpc = sink.Find("rpc");
  ASSERT_NE(rpc, nullptr);
  EXPECT_EQ(rpc->count(), 2u);
  EXPECT_EQ(rpc->max(), Micros(300));
  ASSERT_NE(sink.Find("copy"), nullptr);
  EXPECT_EQ(sink.Find("missing"), nullptr);
  EXPECT_EQ(sink.instant_count("tcp/rexmit"), 2u);
  EXPECT_EQ(sink.instant_count("tcp/dupack"), 0u);

  sink.Reset();
  EXPECT_EQ(sink.Find("rpc"), nullptr);
  EXPECT_EQ(sink.instant_count("tcp/rexmit"), 0u);
}

}  // namespace
}  // namespace psd
