// TimeSeriesSampler unit tests: fixed virtual-interval sampling, the
// bounded ring, rate computation, Stop semantics, export shapes, and the
// zero-perturbation contract (an attached sampler must not move any
// workload-visible virtual timestamp).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/obs/stats.h"
#include "src/obs/timeseries.h"
#include "src/sim/simulator.h"

namespace psd {
namespace {

#ifndef PSD_OBS_DISABLE_TIMESERIES

TEST(TimeSeriesSampler, SamplesAtFixedVirtualInterval) {
  Simulator sim;
  StatsRegistry reg;
  uint64_t counter = 0;
  reg.RegisterGauge("counter", [&] { return counter; });

  TimeSeriesSampler sampler(&sim, &reg, Millis(10));
  sampler.Start();
  EXPECT_TRUE(sampler.running());
  for (int i = 1; i <= 10; i++) {
    sim.Schedule(Millis(10 * i) - Micros(1), [&] { counter += 100; });
  }
  sim.Run(Millis(100));
  sampler.Stop();
  EXPECT_FALSE(sampler.running());

  // Start() samples immediately at t=0, then every 10ms through t=100ms.
  ASSERT_EQ(sampler.taken(), 11u);
  EXPECT_EQ(sampler.dropped(), 0u);
  const std::deque<TimeSample>& s = sampler.samples();
  EXPECT_EQ(s.front().at, 0);
  EXPECT_EQ(s.back().at, Millis(100));
  ASSERT_EQ(s[3].entries.size(), 1u);
  EXPECT_EQ(s[3].entries[0].name, "counter");
  EXPECT_EQ(s[3].entries[0].value, 300u);  // three 100-increments by t=30ms
}

TEST(TimeSeriesSampler, BoundedRingDropsOldestFirst) {
  Simulator sim;
  StatsRegistry reg;
  reg.RegisterGauge("g", [] { return uint64_t{1}; });

  TimeSeriesSampler sampler(&sim, &reg, Millis(1), /*capacity=*/4);
  sampler.Start();
  sim.Run(Millis(9));
  sampler.Stop();

  EXPECT_EQ(sampler.taken(), 10u);
  EXPECT_EQ(sampler.dropped(), 6u);
  ASSERT_EQ(sampler.samples().size(), 4u);
  // Only the newest four samples survive: t=6ms..9ms.
  EXPECT_EQ(sampler.samples().front().at, Millis(6));
  EXPECT_EQ(sampler.samples().back().at, Millis(9));
}

TEST(TimeSeriesSampler, RatePerSecIsDeltaOverElapsed) {
  Simulator sim;
  StatsRegistry reg;
  uint64_t rpcs = 0;
  reg.RegisterGauge("rpc.total", [&] { return rpcs; });

  TimeSeriesSampler sampler(&sim, &reg, Millis(100));
  sampler.Start();
  // 50 RPCs every 100ms -> 500/sec.
  for (int i = 1; i <= 10; i++) {
    sim.Schedule(Millis(100 * i) - Micros(1), [&] { rpcs += 50; });
  }
  sim.Run(Seconds(1));
  sampler.Stop();

  EXPECT_NEAR(sampler.RatePerSec("rpc.total"), 500.0, 1e-6);
  EXPECT_EQ(sampler.RatePerSec("no.such.gauge"), 0.0);
}

TEST(TimeSeriesSampler, StopHaltsTicksAndKeepsCollectedSamples) {
  Simulator sim;
  StatsRegistry reg;
  reg.RegisterGauge("g", [] { return uint64_t{1}; });

  TimeSeriesSampler sampler(&sim, &reg, Millis(10));
  sampler.Start();
  sim.Schedule(Millis(35), [&] { sampler.Stop(); });
  sim.Run(Seconds(10));

  // Ticks at t=0,10,20,30 took samples; the one already-queued tick at 40ms
  // fired as a no-op and nothing after it kept sampling.
  EXPECT_EQ(sampler.taken(), 4u);
  EXPECT_FALSE(sampler.running());
  // Start() again resumes from the current virtual time.
  sampler.Start();
  sim.Run(sim.Now() + Millis(20));
  sampler.Stop();
  EXPECT_EQ(sampler.taken(), 7u);
}

TEST(TimeSeriesSampler, JsonAndCsvExportWithPrefixFilter) {
  Simulator sim;
  StatsRegistry reg;
  reg.RegisterGauge("meta.arp-miss", [] { return uint64_t{3}; });
  reg.RegisterGauge("rpc.total", [] { return uint64_t{9}; });

  TimeSeriesSampler sampler(&sim, &reg, Millis(5));
  sampler.Start();
  sim.Run(Millis(5));
  sampler.Stop();

  std::string json = sampler.Json();
  EXPECT_NE(json.find("\"timeseries\":1"), std::string::npos);
  EXPECT_NE(json.find("\"interval_ns\":5000000"), std::string::npos);
  EXPECT_NE(json.find("\"meta.arp-miss\":3"), std::string::npos);
  EXPECT_NE(json.find("\"rpc.total\":9"), std::string::npos);

  std::string filtered = sampler.Json("meta.");
  EXPECT_NE(filtered.find("meta.arp-miss"), std::string::npos);
  EXPECT_EQ(filtered.find("rpc.total"), std::string::npos);

  std::string csv = sampler.Csv();
  EXPECT_EQ(csv.find("t_ns,meta.arp-miss,rpc.total"), 0u);
  EXPECT_NE(csv.find("\n0,3,9"), std::string::npos);
}

TEST(TimeSeriesSampler, AttachedSamplerDoesNotPerturbWorkloadTimestamps) {
  // A/B: the same charged workload with and without a sampler attached must
  // see identical virtual timestamps at every step. Tick events add to
  // events_executed() but never charge simulated cost.
  auto run = [](bool with_sampler, std::vector<SimTime>* stamps) -> SimTime {
    Simulator sim;
    StatsRegistry reg;
    uint64_t work = 0;
    reg.RegisterGauge("work", [&] { return work; });
    TimeSeriesSampler sampler(&sim, &reg, Micros(700));
    if (with_sampler) {
      sampler.Start();
    }
    HostCpu cpu;
    sim.Spawn("worker", &cpu, [&] {
      for (int i = 0; i < 50; i++) {
        sim.current_thread()->Charge(Micros(100 + i));
        work++;
        stamps->push_back(sim.Now());
      }
    });
    sim.Run(Seconds(1));
    sampler.Stop();
    return sim.Now();
  };

  std::vector<SimTime> without;
  std::vector<SimTime> with;
  SimTime end_a = run(false, &without);
  SimTime end_b = run(true, &with);
  EXPECT_EQ(without, with);
  EXPECT_EQ(end_a, end_b);
}

#else  // PSD_OBS_DISABLE_TIMESERIES

TEST(TimeSeriesSampler, CompiledOutStandInTakesNothing) {
  Simulator sim;
  StatsRegistry reg;
  TimeSeriesSampler sampler(&sim, &reg, Millis(10));
  sampler.Start();
  sim.Run(Millis(100));
  EXPECT_EQ(sampler.taken(), 0u);
  EXPECT_FALSE(sampler.running());
  EXPECT_EQ(sampler.Json(), "{\"timeseries\":1,\"interval_ns\":0,\"taken\":0,\"dropped\":0,\"samples\":[]}");
}

#endif  // PSD_OBS_DISABLE_TIMESERIES

}  // namespace
}  // namespace psd
