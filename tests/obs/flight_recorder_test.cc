// Flight-recorder integration tests:
//  * fault injection — the tcpstat-style retransmit/dup-ACK counters must
//    agree exactly with the instant events the tracer saw, under wire loss;
//  * zero cost — attaching the whole recorder (histograms + stats export +
//    both pcap taps) must not move virtual time by a nanosecond;
//  * StatsRegistry::Reset — back-to-back Worlds in one process must not
//    leak gauges (or dangling component pointers) across runs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/common/workloads.h"
#include "src/obs/histogram.h"
#include "src/obs/netstat.h"
#include "src/obs/pcap.h"
#include "src/obs/stats.h"
#include "src/obs/trace.h"

namespace psd {
namespace {

// Sums every counter whose dotted name ends with `suffix`.
uint64_t SumSuffix(const std::vector<StatsRegistry::Entry>& entries, const std::string& suffix) {
  uint64_t sum = 0;
  for (const auto& e : entries) {
    if (e.name.size() >= suffix.size() &&
        e.name.compare(e.name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      sum += e.value;
    }
  }
  return sum;
}

TEST(FlightRecorder, CountersMatchTracerUnderLoss) {
  Tracer tracer;
  HistogramSink hist;
  tracer.AddSink(&hist);
  ProtolatHooks hooks;
  hooks.tracer = &tracer;
  hooks.on_world = [](World& w) {
    FaultPlan plan;
    plan.loss_rate = 0.05;
    plan.seed = 7;
    w.wire().SetFaults(plan);
  };
  // Snapshot counters and instant counts at the same virtual instant
  // (on_done): the tracer keeps observing the TCP close handshake after
  // this point, so comparing a later sink state against this snapshot
  // would skew.
  std::vector<StatsRegistry::Entry> snap;
  uint64_t wire_dropped = 0;
  uint64_t rexmit_instants = 0;
  uint64_t dupack_instants = 0;
  hooks.on_done = [&](World& w) {
    StatsRegistry reg;
    w.ExportStats(0, &reg);
    w.ExportStats(1, &reg);
    snap = reg.Snapshot();
    reg.Reset();
    wire_dropped = w.wire().frames_dropped();
    rexmit_instants = hist.instant_count("tcp/rexmit");
    dupack_instants = hist.instant_count("tcp/dupack");
  };
  ProtolatOptions opt;
  opt.proto = IpProto::kTcp;
  opt.msg_size = 512;
  opt.trials = 40;
  ASSERT_GT(RunProtolatTraced(Config::kInKernel, MachineProfile::DecStation5000(), opt, hooks),
            0.0);

  // 5% loss on a TCP echo must actually have exercised the recovery paths.
  ASSERT_GT(wire_dropped, 0u);
  uint64_t rexmits = SumSuffix(snap, ".tcp.retransmits");
  uint64_t dupacks = SumSuffix(snap, ".tcp.dup_acks");
  EXPECT_GT(rexmits, 0u);
  // Every counted retransmission and dup-ACK emitted exactly one tracer
  // instant at the same program point — the streams must agree exactly.
  EXPECT_EQ(rexmits, rexmit_instants);
  EXPECT_EQ(dupacks, dupack_instants);
  // Timeout-driven recovery shows up in the rexmt_timeouts block.
  EXPECT_EQ(SumSuffix(snap, ".tcp.rexmt_timeouts") > 0 ||
                SumSuffix(snap, ".tcp.fast_retransmits") > 0,
            true);
}

TEST(FlightRecorder, FullRecorderChargesZeroVirtualCost) {
  ProtolatOptions opt;
  opt.proto = IpProto::kTcp;
  opt.msg_size = 512;
  opt.trials = 10;
  const MachineProfile prof = MachineProfile::DecStation5000();
  for (Config config : {Config::kInKernel, Config::kServer, Config::kLibraryShmIpf}) {
    double plain = RunProtolat(config, prof, opt);

    Tracer tracer;
    HistogramSink hist;
    tracer.AddSink(&hist);
    PcapCapture wire_cap;
    PcapCapture kern_cap;
    ProtolatHooks hooks;
    hooks.tracer = &tracer;
    hooks.on_world = [&](World& w) {
      w.AttachWirePcap(&wire_cap);
      w.AttachKernelPcap(0, &kern_cap);
      w.AttachKernelPcap(1, &kern_cap);
    };
    std::string netstat_text;
    hooks.on_done = [&](World& w) {
      StatsRegistry reg;
      w.ExportStats(0, &reg);
      w.ExportStats(1, &reg);
      w.ExportWireStats(&reg);
      netstat_text = NetstatText(reg.Snapshot());
      reg.Reset();
    };
    double recorded = RunProtolatTraced(config, prof, opt, hooks);

    // Byte-identical virtual time: the recorder observed everything and
    // charged nothing.
    EXPECT_EQ(plain, recorded) << ConfigName(config);
    EXPECT_GT(wire_cap.packet_count(), 0u) << ConfigName(config);
    EXPECT_NE(hist.Find("protolat/rtt"), nullptr) << ConfigName(config);
    EXPECT_FALSE(netstat_text.empty());
  }
}

TEST(FlightRecorder, RttHistogramCoversMeasuredTrials) {
  Tracer tracer;
  HistogramSink hist;
  tracer.AddSink(&hist);
  ProtolatHooks hooks;
  hooks.tracer = &tracer;
  ProtolatOptions opt;
  opt.proto = IpProto::kUdp;
  opt.msg_size = 1;
  opt.trials = 25;
  double mean_ms =
      RunProtolatTraced(Config::kLibraryShmIpf, MachineProfile::DecStation5000(), opt, hooks);
  ASSERT_GT(mean_ms, 0.0);
  const LatencyHistogram* rtt = hist.Find("protolat/rtt");
  ASSERT_NE(rtt, nullptr);
  // One span per measured trial (warmup excluded).
  EXPECT_EQ(rtt->count(), static_cast<uint64_t>(opt.trials));
  // The histogram's mean is the same mean the workload reports, and the
  // quantiles bracket it.
  EXPECT_NEAR(rtt->MeanMicros() / 1000.0, mean_ms, 1e-9);
  EXPECT_LE(rtt->Quantile(0.0), rtt->Quantile(0.5));
  EXPECT_LE(rtt->Quantile(0.5), rtt->Quantile(0.99));
  EXPECT_GE(ToMicros(rtt->max()) + 1e-6, rtt->MeanMicros());
}

TEST(FlightRecorder, StatsRegistryResetPreventsCarryOverBetweenWorlds) {
  StatsRegistry reg;
  ProtolatOptions opt;
  opt.proto = IpProto::kUdp;
  opt.msg_size = 1;
  opt.trials = 3;
  const MachineProfile prof = MachineProfile::DecStation5000();

  ProtolatHooks first;
  size_t first_gauges = 0;
  first.on_done = [&](World& w) {
    w.ExportStats(0, &reg);
    w.ExportWireStats(&reg);
    first_gauges = reg.size();
    ASSERT_FALSE(reg.Snapshot().empty());
    // Contract: a registry outliving its World must Reset before the World
    // dies — afterwards it is empty, and the next run starts clean.
    reg.Reset();
  };
  ASSERT_GT(RunProtolatTraced(Config::kInKernel, prof, opt, first), 0.0);
  EXPECT_GT(first_gauges, 0u);
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_TRUE(reg.Snapshot().empty());

  // Second World, same registry: only the second run's gauges exist, so no
  // double registration and no stale pointers into the dead first World.
  ProtolatHooks second;
  std::vector<StatsRegistry::Entry> snap;
  second.on_done = [&](World& w) {
    w.ExportStats(0, &reg);
    w.ExportWireStats(&reg);
    snap = reg.Snapshot();
    EXPECT_EQ(reg.size(), first_gauges) << "same config must re-register the same gauge set";
    reg.Reset();
  };
  ASSERT_GT(RunProtolatTraced(Config::kInKernel, prof, opt, second), 0.0);
  int carried = 0;
  for (const auto& e : snap) {
    if (e.name == "wire.frames_carried") {
      carried++;
      EXPECT_GT(e.value, 0u);
    }
  }
  EXPECT_EQ(carried, 1) << "exactly one registration after Reset, not an accumulated duplicate";
}

}  // namespace
}  // namespace psd
