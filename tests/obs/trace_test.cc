#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "src/obs/chrome_trace.h"
#include "src/obs/probe.h"
#include "src/obs/stats.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"

namespace psd {
namespace {

// Records every callback verbatim for assertions.
struct RecordingSink : TraceSink {
  std::vector<TraceSpanData> spans;
  struct InstantData {
    std::string name;
    TraceLayer layer;
    SimTime at;
    uint64_t sid;
  };
  std::vector<InstantData> instants;

  void OnSpan(const TraceSpanData& span) override { spans.push_back(span); }
  void OnInstant(const char* name, TraceLayer layer, SimTime at, SimThread*,
                 uint64_t sid) override {
    instants.push_back({name, layer, at, sid});
  }
};

TEST(Tracer, DisabledWithoutSinks) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  RecordingSink sink;
  tracer.AddSink(&sink);
  EXPECT_TRUE(tracer.enabled());
}

TEST(Tracer, NullTracerSpansAreNoops) {
  Simulator sim;
  HostCpu cpu;
  sim.Spawn("t", &cpu, [&] {
    TraceSpan a(nullptr, &sim, "x", TraceLayer::kKern);
    ProbeSpan b(nullptr, &sim, Stage::kIpOutput);
    sim.current_thread()->Charge(Micros(5));
  });
  sim.Run();
  EXPECT_EQ(sim.Now(), Micros(5));
}

TEST(Tracer, SpanRecordsTimingAndThread) {
  Simulator sim;
  HostCpu cpu;
  Tracer tracer;
  RecordingSink sink;
  tracer.AddSink(&sink);
  SimThread* spawned = sim.Spawn("h0/t", &cpu, [&] {
    sim.current_thread()->Charge(Micros(3));
    TraceSpan s(&tracer, &sim, "work", TraceLayer::kIpc, /*sid=*/7);
    sim.current_thread()->Charge(Micros(10));
  });
  sim.Run();
  ASSERT_EQ(sink.spans.size(), 1u);
  const TraceSpanData& s = sink.spans[0];
  EXPECT_STREQ(s.name, "work");
  EXPECT_EQ(s.layer, TraceLayer::kIpc);
  EXPECT_EQ(s.stage, -1);
  EXPECT_EQ(s.sid, 7u);
  EXPECT_EQ(s.begin, Micros(3));
  EXPECT_EQ(s.dur, Micros(10));
  EXPECT_EQ(s.child, 0);
  EXPECT_EQ(s.thread, spawned);
}

TEST(Tracer, ExclusiveChildSubtractsFromParent) {
  Simulator sim;
  HostCpu cpu;
  Tracer tracer;
  RecordingSink sink;
  tracer.AddSink(&sink);
  sim.Spawn("t", &cpu, [&] {
    ProbeSpan outer(&tracer, &sim, Stage::kEntryCopyin);
    sim.current_thread()->Charge(Micros(10));
    {
      ProbeSpan inner(&tracer, &sim, Stage::kProtoOutput);
      sim.current_thread()->Charge(Micros(25));
    }
    sim.current_thread()->Charge(Micros(5));
  });
  sim.Run();
  ASSERT_EQ(sink.spans.size(), 2u);  // inner closes (and is delivered) first
  EXPECT_EQ(sink.spans[0].dur, Micros(25));
  EXPECT_EQ(sink.spans[0].child, 0);
  EXPECT_EQ(sink.spans[1].dur, Micros(40));
  EXPECT_EQ(sink.spans[1].child, Micros(25));
}

TEST(Tracer, NonExclusiveChildKeepsParentTime) {
  // A free-form span (IPC hop inside a stage) must not steal stage time:
  // the parent's child stays 0, so Table 4 accounting is unchanged.
  Simulator sim;
  HostCpu cpu;
  Tracer tracer;
  StageRecorder rec;
  tracer.AddSink(&rec);
  sim.Spawn("t", &cpu, [&] {
    ProbeSpan outer(&tracer, &sim, Stage::kKernelCopyout);
    sim.current_thread()->Charge(Micros(10));
    {
      TraceSpan inner(&tracer, &sim, "ipc/send", TraceLayer::kIpc);
      sim.current_thread()->Charge(Micros(30));
    }
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(rec.cell(Stage::kKernelCopyout).MeanMicros(), 40.0);
}

TEST(Tracer, UncommittedSpanNotEmittedButStillExcluded) {
  Simulator sim;
  HostCpu cpu;
  Tracer tracer;
  RecordingSink sink;
  tracer.AddSink(&sink);
  sim.Spawn("t", &cpu, [&] {
    ProbeSpan outer(&tracer, &sim, Stage::kProtoInput);
    sim.current_thread()->Charge(Micros(10));
    {
      ProbeSpan cond(&tracer, &sim, Stage::kProtoOutput);
      cond.MarkConditional();
      sim.current_thread()->Charge(Micros(7));
      // Never committed: tcp_output that sent nothing.
    }
  });
  sim.Run();
  ASSERT_EQ(sink.spans.size(), 1u);
  EXPECT_EQ(sink.spans[0].stage, static_cast<int>(Stage::kProtoInput));
  EXPECT_EQ(sink.spans[0].dur, Micros(17));
  EXPECT_EQ(sink.spans[0].child, Micros(7));
}

TEST(Tracer, SeparateThreadsNestIndependently) {
  Simulator sim;
  HostCpu cpu_a, cpu_b;
  Tracer tracer;
  RecordingSink sink;
  tracer.AddSink(&sink);
  sim.Spawn("a", &cpu_a, [&] {
    TraceSpan s(&tracer, &sim, "a-span", TraceLayer::kKern);
    sim.current_thread()->Charge(Micros(100));
  });
  sim.Spawn("b", &cpu_b, [&] {
    TraceSpan s(&tracer, &sim, "b-span", TraceLayer::kInet);
    sim.current_thread()->Charge(Micros(40));
  });
  sim.Run();
  ASSERT_EQ(sink.spans.size(), 2u);
  // b finishes first; neither shows up as the other's child.
  EXPECT_STREQ(sink.spans[0].name, "b-span");
  EXPECT_EQ(sink.spans[0].dur, Micros(40));
  EXPECT_EQ(sink.spans[0].child, 0);
  EXPECT_STREQ(sink.spans[1].name, "a-span");
  EXPECT_EQ(sink.spans[1].dur, Micros(100));
  EXPECT_EQ(sink.spans[1].child, 0);
}

TEST(Tracer, EmitDeliversAnalyticSpan) {
  Simulator sim;
  Tracer tracer;
  RecordingSink sink;
  tracer.AddSink(&sink);
  tracer.Emit(&sim, "wire", TraceLayer::kWire, static_cast<int>(Stage::kNetworkTransit),
              Micros(50), Micros(9), /*sid=*/3);
  ASSERT_EQ(sink.spans.size(), 1u);
  EXPECT_EQ(sink.spans[0].begin, Micros(50));
  EXPECT_EQ(sink.spans[0].dur, Micros(9));
  EXPECT_EQ(sink.spans[0].stage, static_cast<int>(Stage::kNetworkTransit));
  EXPECT_EQ(sink.spans[0].sid, 3u);
  EXPECT_EQ(sink.spans[0].thread, nullptr);  // event context
}

TEST(Tracer, InstantDeliversPointEvent) {
  Simulator sim;
  Tracer tracer;
  RecordingSink sink;
  tracer.AddSink(&sink);
  sim.Schedule(Micros(12), [&] { tracer.Instant(&sim, "migrate/out", TraceLayer::kCore, 5); });
  sim.Run();
  ASSERT_EQ(sink.instants.size(), 1u);
  EXPECT_EQ(sink.instants[0].name, "migrate/out");
  EXPECT_EQ(sink.instants[0].layer, TraceLayer::kCore);
  EXPECT_EQ(sink.instants[0].at, Micros(12));
  EXPECT_EQ(sink.instants[0].sid, 5u);
}

TEST(Tracer, FansOutToAllSinks) {
  Simulator sim;
  Tracer tracer;
  RecordingSink a, b;
  tracer.AddSink(&a);
  tracer.AddSink(&b);
  tracer.Emit(&sim, "x", TraceLayer::kKern, -1, 0, Micros(1));
  EXPECT_EQ(a.spans.size(), 1u);
  EXPECT_EQ(b.spans.size(), 1u);
}

TEST(StageLayerMapping, CoversAllStages) {
  for (int i = 0; i < static_cast<int>(Stage::kNumStages); i++) {
    Stage s = static_cast<Stage>(i);
    EXPECT_STRNE(StageName(s), "");
    EXPECT_LT(static_cast<int>(StageLayer(s)), static_cast<int>(TraceLayer::kNumLayers));
  }
  EXPECT_EQ(StageLayer(Stage::kNetisrFilter), TraceLayer::kFilter);
  EXPECT_EQ(StageLayer(Stage::kIpOutput), TraceLayer::kInet);
  EXPECT_EQ(StageLayer(Stage::kDevIntrRead), TraceLayer::kKern);
  EXPECT_EQ(StageLayer(Stage::kEntryCopyin), TraceLayer::kSock);
  EXPECT_EQ(StageLayer(Stage::kNetworkTransit), TraceLayer::kWire);
}

TEST(StatsRegistry, SnapshotReadsLiveValuesSorted) {
  StatsRegistry reg;
  uint64_t rx = 0, tx = 0;
  reg.RegisterGauge("h0.tx", [&] { return tx; });
  reg.RegisterGauge("h0.rx", [&] { return rx; });
  rx = 3;
  tx = 9;
  auto snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "h0.rx");
  EXPECT_EQ(snap[0].value, 3u);
  EXPECT_EQ(snap[1].name, "h0.tx");
  EXPECT_EQ(snap[1].value, 9u);
  rx = 4;
  EXPECT_EQ(reg.Snapshot()[0].value, 4u);  // gauges, not samples
  EXPECT_EQ(reg.Dump(), "h0.rx 4\nh0.tx 9\n");
}

TEST(ChromeTraceSink, TracksLayersAndHosts) {
  Simulator sim;
  HostCpu cpu;
  Tracer tracer;
  ChromeTraceSink sink;
  tracer.AddSink(&sink);
  sim.Spawn("h0/app", &cpu, [&] {
    TraceSpan s(&tracer, &sim, "send", TraceLayer::kSock);
    sim.current_thread()->Charge(Micros(2));
  });
  sim.Run();
  tracer.Emit(&sim, "wire", TraceLayer::kWire, -1, 0, Micros(1));
  EXPECT_EQ(sink.span_count(), 2u);
  EXPECT_TRUE(sink.HasLayer(TraceLayer::kSock));
  EXPECT_TRUE(sink.HasLayer(TraceLayer::kWire));
  EXPECT_FALSE(sink.HasLayer(TraceLayer::kFilter));
}

TEST(ChromeTraceSink, WritesWellFormedJson) {
  Simulator sim;
  HostCpu cpu;
  Tracer tracer;
  ChromeTraceSink sink;
  tracer.AddSink(&sink);
  sim.Spawn("h1/intr", &cpu, [&] {
    ProbeSpan s(&tracer, &sim, Stage::kDevIntrRead);
    sim.current_thread()->Charge(Micros(4));
    tracer.Instant(&sim, "mark \"x\"", TraceLayer::kCore, 2);
  });
  sim.Run();
  std::ostringstream os;
  sink.WriteJson(os);
  std::string json = os.str();
  // Structure: one top-level object with the traceEvents array.
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Host h1 became a named process; the thread is named too.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"h1\"}"), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"h1/intr\"}"), std::string::npos);
  // The stage span is a duration event in the kern category.
  EXPECT_NE(json.find("\"cat\":\"kern\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":4.000"), std::string::npos);
  // The instant escaped its quotes.
  EXPECT_NE(json.find("mark \\\"x\\\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Balanced braces/brackets outside string literals.
  int depth = 0;
  bool in_str = false;
  for (size_t i = 0; i < json.size(); i++) {
    char c = json[i];
    if (in_str) {
      if (c == '\\') {
        i++;
      } else if (c == '"') {
        in_str = false;
      }
    } else if (c == '"') {
      in_str = true;
    } else if (c == '{' || c == '[') {
      depth++;
    } else if (c == '}' || c == ']') {
      depth--;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_str);
}

}  // namespace
}  // namespace psd
