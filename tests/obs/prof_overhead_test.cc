// Profiler overhead tripwire on the udp_blast engine workload — the
// per-packet hot path, where boundary density is highest.
//
// Two costs matter, bounded in two places:
//
//  * Compiled-in-but-idle: every PSD_PROF_SCOPE site costs one static bool
//    load. That is the ISSUE 9 "<= 10% wall vs profiler-off" gate, and it
//    compares a normal build against a PSD_OBS_DISABLE_PROF build — two
//    binaries, so it lives in CI (prof-disabled-ab job), not here.
//
//  * Running: exact interval attribution stamps the TSC at every domain
//    boundary (scope push/pop, fiber depart/arrive, drain entry). udp_blast
//    crosses ~140 boundaries per packet, so a running profiler costs
//    ~25-35% wall on this engine — measured ~32% on a 2.1GHz Xeon, almost
//    entirely rdtsc latency (~20ns) times boundary count. That is by
//    design acceptable: bench trials are never profiled (host_profile rows
//    come from one extra run), psdprof/trace_export runs are dedicated,
//    and relative domain shares stay faithful because the stamp cost
//    spreads uniformly over boundaries. This test bounds the running cost
//    at 1.5x as a regression tripwire: it catches hot-path mistakes (an
//    earlier version paid two stamps on every fast-resume bail and clocked
//    73% overhead; this test is what flagged it) without flaking on loaded
//    CI machines.
//
// Methodology mirrors bench_engine: min-of-trials on both sides (min, not
// mean, because host timing noise is strictly additive), with a warmup run
// first so page cache and allocator state don't bias the first side
// measured.
#include <gtest/gtest.h>

#include <algorithm>

#include "bench/common/engine_workloads.h"
#include "src/cost/machine_profile.h"
#include "src/obs/prof.h"

namespace psd {
namespace {

#ifndef PSD_OBS_DISABLE_PROF

constexpr double kScale = 0.25;
constexpr int kTrials = 3;
constexpr double kMaxRunningOverhead = 1.5;

double MinWallNs(bool profiled) {
  MachineProfile mp = MachineProfile::DecStation5000();
  double best = 0;
  for (int t = 0; t < kTrials; t++) {
    if (profiled) {
      HostProfiler::Get().Start();
    }
    EngineRunOutcome out = RunEngineUdpBlast(mp, kScale);
    if (profiled) {
      HostProfiler::Get().Stop();
    }
    best = t == 0 ? out.wall_ns : std::min(best, out.wall_ns);
  }
  return best;
}

TEST(HostProfOverhead, UdpBlastRunningCostStaysBounded) {
  RunEngineUdpBlast(MachineProfile::DecStation5000(), kScale);  // warmup
  double off_ns = MinWallNs(false);
  double on_ns = MinWallNs(true);
  ASSERT_GT(off_ns, 0.0);
  EXPECT_LE(on_ns, off_ns * kMaxRunningOverhead)
      << "profiled udp_blast wall " << on_ns / 1e6 << " ms vs unprofiled " << off_ns / 1e6
      << " ms (" << (on_ns / off_ns - 1.0) * 100.0
      << "% overhead): a profiler hot-path regression, see the tripwire rationale above";
}

#endif  // PSD_OBS_DISABLE_PROF

}  // namespace
}  // namespace psd
