// End-to-end tracer coverage: a short protolat run must produce spans from
// every decomposed layer, valid chrome://tracing JSON, and identical virtual
// time with and without the tracer attached (observation cannot perturb the
// simulation).
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>

#include "bench/common/workloads.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/stats.h"
#include "src/obs/trace.h"

namespace psd {
namespace {

// Minimal JSON well-formedness check: every brace/bracket balances outside
// string literals and the document is a single object.
void ExpectBalancedJson(const std::string& json) {
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  int depth = 0;
  bool in_str = false;
  size_t closed_at = std::string::npos;
  for (size_t i = 0; i < json.size(); i++) {
    char c = json[i];
    if (in_str) {
      if (c == '\\') {
        i++;
      } else if (c == '"') {
        in_str = false;
      }
    } else if (c == '"') {
      in_str = true;
    } else if (c == '{' || c == '[') {
      depth++;
    } else if (c == '}' || c == ']') {
      depth--;
      ASSERT_GE(depth, 0) << "unbalanced close at offset " << i;
      if (depth == 0 && closed_at == std::string::npos) {
        closed_at = i;
      }
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_str);
  // Nothing but whitespace after the top-level object closes.
  ASSERT_NE(closed_at, std::string::npos);
  for (size_t i = closed_at + 1; i < json.size(); i++) {
    EXPECT_TRUE(json[i] == '\n' || json[i] == ' ') << "trailing junk at " << i;
  }
}

TEST(TraceExport, ProtolatCoversAllDecomposedLayers) {
  Tracer tracer;
  ChromeTraceSink sink;
  tracer.AddSink(&sink);
  ProtolatHooks hooks;
  hooks.tracer = &tracer;
  ProtolatOptions opt;
  opt.proto = IpProto::kUdp;
  opt.msg_size = 100;
  opt.trials = 5;
  double rtt = RunProtolatTraced(Config::kLibraryShmIpf, MachineProfile::DecStation5000(), opt,
                                 hooks);
  ASSERT_GT(rtt, 0.0);
  EXPECT_GT(sink.span_count(), 0u);
  // The ISSUE's acceptance bar: spans from all five decomposed subsystems.
  EXPECT_TRUE(sink.HasLayer(TraceLayer::kKern));
  EXPECT_TRUE(sink.HasLayer(TraceLayer::kIpc));
  EXPECT_TRUE(sink.HasLayer(TraceLayer::kFilter));
  EXPECT_TRUE(sink.HasLayer(TraceLayer::kInet));
  EXPECT_TRUE(sink.HasLayer(TraceLayer::kCore));
  // Plus the socket boundary and analytic wire transit.
  EXPECT_TRUE(sink.HasLayer(TraceLayer::kSock));
  EXPECT_TRUE(sink.HasLayer(TraceLayer::kWire));

  std::ostringstream os;
  sink.WriteJson(os);
  std::string json = os.str();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Both simulated hosts render as named processes.
  EXPECT_NE(json.find("{\"name\":\"h0\"}"), std::string::npos);
  EXPECT_NE(json.find("{\"name\":\"h1\"}"), std::string::npos);
}

TEST(TraceExport, ServerConfigEmitsServLayer) {
  Tracer tracer;
  ChromeTraceSink sink;
  tracer.AddSink(&sink);
  ProtolatHooks hooks;
  hooks.tracer = &tracer;
  ProtolatOptions opt;
  opt.proto = IpProto::kUdp;
  opt.msg_size = 1;
  opt.trials = 3;
  double rtt =
      RunProtolatTraced(Config::kServer, MachineProfile::DecStation5000(), opt, hooks);
  ASSERT_GT(rtt, 0.0);
  EXPECT_TRUE(sink.HasLayer(TraceLayer::kServ));
  EXPECT_TRUE(sink.HasLayer(TraceLayer::kIpc));
}

TEST(TraceExport, TracerDoesNotPerturbVirtualTime) {
  ProtolatOptions opt;
  opt.proto = IpProto::kTcp;
  opt.msg_size = 512;
  opt.trials = 5;
  const MachineProfile prof = MachineProfile::DecStation5000();
  for (Config config : {Config::kInKernel, Config::kLibraryShmIpf}) {
    double plain = RunProtolat(config, prof, opt);
    Tracer tracer;
    ChromeTraceSink sink;
    tracer.AddSink(&sink);
    ProtolatHooks hooks;
    hooks.tracer = &tracer;
    double traced = RunProtolatTraced(config, prof, opt, hooks);
    EXPECT_EQ(plain, traced) << ConfigName(config);
    EXPECT_GT(sink.span_count(), 0u);
  }
}

TEST(TraceExport, StatsRegistryExportsEndToEndCounters) {
  Tracer tracer;
  ChromeTraceSink sink;
  tracer.AddSink(&sink);
  ProtolatHooks hooks;
  hooks.tracer = &tracer;
  std::vector<StatsRegistry::Entry> snap;
  hooks.on_done = [&snap](World& w) {
    StatsRegistry reg;
    w.ExportStats(0, &reg);
    w.ExportStats(1, &reg);
    w.ExportWireStats(&reg);
    snap = reg.Snapshot();
  };
  ProtolatOptions opt;
  opt.proto = IpProto::kUdp;
  opt.msg_size = 1;
  opt.trials = 3;
  ASSERT_GT(RunProtolatTraced(Config::kLibraryShmIpf, MachineProfile::DecStation5000(), opt,
                              hooks),
            0.0);
  ASSERT_FALSE(snap.empty());
  auto value = [&snap](const std::string& name) -> int64_t {
    for (const auto& e : snap) {
      if (e.name == name) {
        return static_cast<int64_t>(e.value);
      }
    }
    return -1;
  };
  // Both directions of the echo carried frames over the wire...
  EXPECT_GT(value("wire.frames_carried"), 0);
  EXPECT_EQ(value("wire.frames_dropped"), 0);
  // ...and the per-host registries picked up kernel + stack counters.
  EXPECT_GT(value("h0.kern.rx_delivered"), 0);
  EXPECT_GT(value("h1.kern.rx_delivered"), 0);
}

}  // namespace
}  // namespace psd
