// Packet journeys and the unified drop-reason ledger (src/obs/journey.h):
//  * taxonomy — stable unique kebab-case names, event pseudo-reasons are not
//    drops;
//  * recorder semantics — bounded rings, first-terminal-wins, Reset;
//  * reconciliation — under 5% wire loss every legacy drop counter equals
//    the sum of its ledger reasons, in every placement;
//  * conservation — minted = delivered + consumed + dropped + in-flight,
//    with zero terminal conflicts;
//  * migration — strays arriving in the handover window are attributed to
//    migration-window, not lumped into generic no-pcb drops;
//  * pktwalk — golden text/JSON rendering incl. --lost-only;
//  * zero cost — disabling both recorders must not move virtual time.
#include <gtest/gtest.h>

#include <cctype>
#include <set>
#include <string>
#include <vector>

#include "bench/common/workloads.h"
#include "src/obs/journey.h"
#include "src/obs/stats.h"
#include "src/testbed/world.h"

namespace psd {
namespace {

void ResetJourney() {
  DropLedger::Get().Reset();
  PacketJourney::Get().Reset();
  DropLedger::Get().set_enabled(true);
  PacketJourney::Get().set_enabled(true);
  DropLedger::Get().set_ring_capacity(1 << 14);
  PacketJourney::Get().set_hop_capacity(1 << 20);
}

// Sums every counter whose dotted name ends with `suffix`.
uint64_t SumSuffix(const std::vector<StatsRegistry::Entry>& entries, const std::string& suffix) {
  uint64_t sum = 0;
  for (const auto& e : entries) {
    if (e.name.size() >= suffix.size() &&
        e.name.compare(e.name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      sum += e.value;
    }
  }
  return sum;
}

TEST(DropTaxonomy, NamesAreUniqueKebabCase) {
  std::set<std::string> seen;
  for (size_t i = 0; i < static_cast<size_t>(DropReason::kNumReasons); ++i) {
    std::string name = DropReasonName(static_cast<DropReason>(i));
    EXPECT_TRUE(seen.insert(name).second) << "duplicate reason name: " << name;
    ASSERT_FALSE(name.empty());
    for (char c : name) {
      EXPECT_TRUE((std::islower(static_cast<unsigned char>(c)) != 0) ||
                  (std::isdigit(static_cast<unsigned char>(c)) != 0) || c == '-')
          << "non-kebab character '" << c << "' in " << name;
    }
  }
}

TEST(DropTaxonomy, EventPseudoReasonsAreNotDrops) {
  EXPECT_FALSE(IsDropReason(DropReason::kNone));
  EXPECT_FALSE(IsDropReason(DropReason::kWireDup));
  EXPECT_FALSE(IsDropReason(DropReason::kWireDelay));
  EXPECT_FALSE(IsDropReason(DropReason::kNumReasons));
  EXPECT_TRUE(IsDropReason(DropReason::kWireFault));
  EXPECT_TRUE(IsDropReason(DropReason::kMigrationWindow));
  EXPECT_TRUE(IsDropReason(DropReason::kCrashCleanup));
  EXPECT_TRUE(IsDropReason(DropReason::kTcpAfterClose));
}

TEST(DropLedgerUnit, RecordBumpsTotalsAndSetsTerminal) {
  ResetJourney();
  PacketJourney& j = PacketJourney::Get();
  DropLedger& led = DropLedger::Get();

  uint64_t pkt = j.Mint();
  ASSERT_NE(pkt, 0u);
  led.Record(pkt, TraceLayer::kWire, DropReason::kWireFault, 100, "wire");
  EXPECT_EQ(led.total(DropReason::kWireFault), 1u);
  EXPECT_EQ(led.total_drops(), 1u);
  ASSERT_EQ(led.recent().size(), 1u);
  EXPECT_EQ(led.recent().front().pkt, pkt);
  EXPECT_EQ(led.recent().front().node, "wire");
  // The drop is the packet's terminal.
  EXPECT_EQ(j.DispositionOf(pkt), PktDisposition::kDropped);
  EXPECT_EQ(j.ReasonOf(pkt), DropReason::kWireFault);
  EXPECT_EQ(j.dropped(), 1u);
  EXPECT_EQ(j.in_flight(), 0u);

  // A dup/delay event is ledgered but leaves the packet alive.
  uint64_t live = j.Mint();
  led.Record(live, TraceLayer::kWire, DropReason::kWireDup, 200, "wire");
  EXPECT_EQ(led.total(DropReason::kWireDup), 1u);
  EXPECT_EQ(led.total_drops(), 1u) << "dup is an event, not a drop";
  EXPECT_FALSE(PacketJourney::Get().HasTerminal(live));
  EXPECT_EQ(j.in_flight(), 1u);

  // Tx-side drops before mint carry pkt 0 and set no terminal.
  led.Record(0, TraceLayer::kInet, DropReason::kIpNoRoute, 300, "h0/ns");
  EXPECT_EQ(led.total(DropReason::kIpNoRoute), 1u);
  EXPECT_EQ(j.dropped(), 1u);
}

TEST(DropLedgerUnit, RecentRingIsBoundedButTotalsAreExact) {
  ResetJourney();
  DropLedger& led = DropLedger::Get();
  led.set_ring_capacity(4);
  for (int i = 0; i < 10; i++) {
    led.Record(0, TraceLayer::kKern, DropReason::kQueueOverflow, i, "q");
  }
  EXPECT_EQ(led.recent().size(), 4u);
  EXPECT_EQ(led.recent().front().at, 6) << "ring keeps the most recent events";
  EXPECT_EQ(led.total(DropReason::kQueueOverflow), 10u);
  led.Reset();
  EXPECT_EQ(led.total_drops(), 0u);
  EXPECT_TRUE(led.recent().empty());
}

TEST(DropLedgerUnit, ExportStatsRegistersOneGaugePerReason) {
  ResetJourney();
  DropLedger& led = DropLedger::Get();
  led.Record(0, TraceLayer::kWire, DropReason::kWireFault, 1, "wire");
  led.Record(0, TraceLayer::kWire, DropReason::kWireFault, 2, "wire");
  StatsRegistry reg;
  led.ExportStats(&reg, "drops.");
  std::vector<StatsRegistry::Entry> snap = reg.Snapshot();
  // One gauge per real reason plus the two event pseudo-reasons.
  EXPECT_EQ(snap.size(), static_cast<size_t>(DropReason::kNumReasons) - 1);
  EXPECT_EQ(SumSuffix(snap, "drops.wire-fault"), 2u);
  EXPECT_EQ(SumSuffix(snap, "drops.migration-window"), 0u);
  reg.Reset();
}

TEST(PacketJourneyUnit, MintIsMonotonicAndNeverZero) {
  ResetJourney();
  PacketJourney& j = PacketJourney::Get();
  uint64_t prev = 0;
  for (int i = 0; i < 100; i++) {
    uint64_t id = j.Mint();
    ASSERT_NE(id, 0u);
    ASSERT_GT(id, prev);
    prev = id;
  }
  EXPECT_EQ(j.minted(), 100u);
  EXPECT_EQ(j.in_flight(), 100u);
}

TEST(PacketJourneyUnit, FirstTerminalWinsAndConflictsAreCounted) {
  ResetJourney();
  PacketJourney& j = PacketJourney::Get();
  uint64_t pkt = j.Mint();
  j.Deliver(pkt, TraceLayer::kSock, "h1/ns", 10);
  EXPECT_EQ(j.DispositionOf(pkt), PktDisposition::kDelivered);
  EXPECT_EQ(j.conflicts(), 0u);
  // A later drop attempt must not overwrite the delivery.
  j.Dropped(pkt, TraceLayer::kInet, DropReason::kTcpSeqTrim, "h1/ns", 20);
  EXPECT_EQ(j.DispositionOf(pkt), PktDisposition::kDelivered);
  EXPECT_EQ(j.dropped(), 0u);
  EXPECT_EQ(j.conflicts(), 1u);
  // ConsumeIfOpen is a no-op on a terminated packet and counts no conflict.
  j.ConsumeIfOpen(pkt, TraceLayer::kInet, "h1/ns", 30);
  EXPECT_EQ(j.consumed(), 0u);
  EXPECT_EQ(j.conflicts(), 1u);
  // ... but consumes an open one.
  uint64_t ack = j.Mint();
  j.ConsumeIfOpen(ack, TraceLayer::kInet, "h0/ns", 40);
  EXPECT_EQ(j.DispositionOf(ack), PktDisposition::kConsumed);
  EXPECT_EQ(j.in_flight(), 0u);
}

TEST(PacketJourneyUnit, JourneyOfReturnsHopsInOrder) {
  ResetJourney();
  PacketJourney& j = PacketJourney::Get();
  uint64_t a = j.Mint();
  uint64_t b = j.Mint();
  j.Hop(a, TraceLayer::kInet, "h0/ns/tx", 10, 64);
  j.Hop(b, TraceLayer::kInet, "h0/ns/tx", 11, 64);
  j.Hop(a, TraceLayer::kWire, "wire/transmit", 20);
  j.Hop(a, TraceLayer::kKern, "h1/deliver", 30);
  j.Deliver(a, TraceLayer::kSock, "h1/ns", 40);
  std::vector<HopEvent> hops = j.JourneyOf(a);
  ASSERT_EQ(hops.size(), 4u);
  EXPECT_EQ(hops[0].node, "h0/ns/tx");
  EXPECT_EQ(hops[0].aux, 64u);
  EXPECT_EQ(hops[1].node, "wire/transmit");
  EXPECT_EQ(hops[2].node, "h1/deliver");
  EXPECT_EQ(hops[3].disp, PktDisposition::kDelivered);
  EXPECT_EQ(j.JourneyOf(b).size(), 1u);
}

// ---------------------------------------------------------------------------
// pktwalk rendering goldens (unit-driven for exact determinism).

class PktwalkGolden : public ::testing::Test {
 protected:
  void SetUp() override {
    ResetJourney();
    PacketJourney& j = PacketJourney::Get();
    p1_ = j.Mint();
    j.Hop(p1_, TraceLayer::kInet, "h0/ns/tx", 10, 42);
    j.Hop(p1_, TraceLayer::kWire, "wire/transmit", 20);
    j.Deliver(p1_, TraceLayer::kSock, "h1/ns", 30);
    p2_ = j.Mint();
    j.Hop(p2_, TraceLayer::kInet, "h0/ns/tx", 40, 42);
    DropLedger::Get().Record(p2_, TraceLayer::kWire, DropReason::kWireFault, 50, "wire");
    p3_ = j.Mint();
    j.Hop(p3_, TraceLayer::kInet, "h0/ns/tx", 60, 42);  // never terminates
  }
  uint64_t p1_ = 0, p2_ = 0, p3_ = 0;
};

TEST_F(PktwalkGolden, LostOnlyTextShowsDroppedAndInFlightPacketsOnly) {
  PktwalkFilter f;
  f.lost_only = true;
  EXPECT_EQ(PktwalkText(f),
            "packets: 3 minted, 1 delivered, 0 consumed, 1 dropped, 1 in flight\n"
            "pkt 2: dropped(wire-fault)\n"
            "  @40 inet h0/ns/tx aux=42\n"
            "  @50 wire wire -> dropped(wire-fault)\n"
            "pkt 3: in-flight-at-exit\n"
            "  @60 inet h0/ns/tx aux=42\n"
            "drop reasons:\n"
            "  1 wire-fault\n"
            "recent drop events: 1\n"
            "  pkt 2 @50 wire wire-fault node=wire\n");
}

TEST_F(PktwalkGolden, SinglePacketFilterShowsOneJourney) {
  PktwalkFilter f;
  f.pkt = p1_;
  EXPECT_EQ(PktwalkText(f),
            "packets: 3 minted, 1 delivered, 0 consumed, 1 dropped, 1 in flight\n"
            "pkt 1: delivered\n"
            "  @10 inet h0/ns/tx aux=42\n"
            "  @20 wire wire/transmit\n"
            "  @30 sock h1/ns -> delivered\n"
            "drop reasons:\n"
            "  1 wire-fault\n"
            "recent drop events: 1\n"
            "  pkt 2 @50 wire wire-fault node=wire\n");
}

TEST_F(PktwalkGolden, DropsOnlySkipsJourneys) {
  PktwalkFilter f;
  f.drops_only = true;
  std::string text = PktwalkText(f);
  EXPECT_EQ(text.find("packets:"), std::string::npos);
  EXPECT_EQ(text.find("pkt 1:"), std::string::npos);
  EXPECT_NE(text.find("drop reasons:\n  1 wire-fault\n"), std::string::npos);
}

TEST_F(PktwalkGolden, JsonCarriesSummaryReasonsAndHops) {
  PktwalkFilter f;
  std::string json = PktwalkJson(f);
  EXPECT_NE(json.find("\"summary\": {\"minted\": 3, \"delivered\": 1, \"consumed\": 0, "
                      "\"dropped\": 1, \"in_flight\": 1, \"conflicts\": 0}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"drop_reasons\": {\"wire-fault\": 1}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pkt\": 2, \"terminal\": \"dropped(wire-fault)\""), std::string::npos);
  EXPECT_NE(json.find("\"disp\": \"dropped\", \"reason\": \"wire-fault\""), std::string::npos);
  EXPECT_NE(json.find("\"pkt\": 3, \"terminal\": \"in-flight-at-exit\""), std::string::npos);
  // Dup/delay events must never surface as terminals.
  EXPECT_EQ(json.find("wire-dup"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Integration: conservation + exact counter reconciliation.

struct LedgerSnapshot {
  uint64_t totals[static_cast<size_t>(DropReason::kNumReasons)] = {};
  uint64_t minted = 0, delivered = 0, consumed = 0, dropped = 0, in_flight = 0, conflicts = 0;

  static LedgerSnapshot Take() {
    LedgerSnapshot s;
    for (size_t i = 0; i < static_cast<size_t>(DropReason::kNumReasons); ++i) {
      s.totals[i] = DropLedger::Get().total(static_cast<DropReason>(i));
    }
    const PacketJourney& j = PacketJourney::Get();
    s.minted = j.minted();
    s.delivered = j.delivered();
    s.consumed = j.consumed();
    s.dropped = j.dropped();
    s.in_flight = j.in_flight();
    s.conflicts = j.conflicts();
    return s;
  }
  uint64_t of(DropReason r) const { return totals[static_cast<size_t>(r)]; }
};

// Every legacy drop counter must equal the sum of its ledger reasons — the
// taxonomy covers every drop site exactly once. Snapshot counters and ledger
// at the same virtual instant (on_done): the TCP close keeps running after.
TEST(JourneyReconciliation, LegacyCountersEqualLedgerUnderLossEverywhere) {
  ProtolatOptions opt;
  opt.proto = IpProto::kTcp;
  opt.msg_size = 512;
  opt.trials = 40;
  const MachineProfile prof = MachineProfile::DecStation5000();
  for (Config config : {Config::kInKernel, Config::kServer, Config::kLibraryIpc,
                        Config::kLibraryShm, Config::kLibraryShmIpf}) {
    ResetJourney();
    std::vector<StatsRegistry::Entry> snap;
    LedgerSnapshot led;
    uint64_t wire_dropped = 0, nic_dropped = 0;
    ProtolatHooks hooks;
    hooks.on_world = [](World& w) {
      FaultPlan plan;
      plan.loss_rate = 0.05;
      plan.seed = 7;
      w.wire().SetFaults(plan);
    };
    hooks.on_done = [&](World& w) {
      StatsRegistry reg;
      w.ExportStats(0, &reg);
      w.ExportStats(1, &reg);
      snap = reg.Snapshot();
      reg.Reset();
      led = LedgerSnapshot::Take();
      wire_dropped = w.wire().frames_dropped();
      nic_dropped = w.host(0)->nic()->rx_dropped() + w.host(1)->nic()->rx_dropped();
    };
    ASSERT_GT(RunProtolatTraced(config, prof, opt, hooks), 0.0) << ConfigName(config);

    SCOPED_TRACE(ConfigName(config));
    // The run must actually have lost frames, and each one must be ledgered.
    ASSERT_GT(wire_dropped, 0u);
    EXPECT_EQ(wire_dropped, led.of(DropReason::kWireFault));
    EXPECT_EQ(nic_dropped, led.of(DropReason::kNicRingOverflow));
    // Kernel demux.
    EXPECT_EQ(SumSuffix(snap, ".rx_unmatched"),
              led.of(DropReason::kNoFilterMatch) + led.of(DropReason::kFilterRemoved));
    EXPECT_EQ(SumSuffix(snap, ".dropped"), led.of(DropReason::kQueueOverflow));
    // Ether / IP.
    EXPECT_EQ(SumSuffix(snap, ".ether.bad_frames"), led.of(DropReason::kEtherBadFrame));
    EXPECT_EQ(SumSuffix(snap, ".ether.unresolved_drops"), led.of(DropReason::kEtherUnresolved));
    EXPECT_EQ(SumSuffix(snap, ".ip.bad_header"), led.of(DropReason::kIpBadHeader));
    EXPECT_EQ(SumSuffix(snap, ".ip.bad_checksum"), led.of(DropReason::kIpBadChecksum));
    EXPECT_EQ(SumSuffix(snap, ".ip.not_ours"), led.of(DropReason::kIpNotOurs));
    EXPECT_EQ(SumSuffix(snap, ".ip.no_route"), led.of(DropReason::kIpNoRoute));
    EXPECT_EQ(SumSuffix(snap, ".ip.no_proto"), led.of(DropReason::kIpNoProto));
    EXPECT_EQ(SumSuffix(snap, ".ip.reassembly_timeouts"),
              led.of(DropReason::kIpReassemblyTimeout));
    // UDP / TCP.
    EXPECT_EQ(SumSuffix(snap, ".udp.bad_checksum"), led.of(DropReason::kUdpBadChecksum));
    EXPECT_EQ(SumSuffix(snap, ".udp.no_port"), led.of(DropReason::kUdpNoPort));
    EXPECT_EQ(SumSuffix(snap, ".udp.full_drops"), led.of(DropReason::kUdpBufferFull));
    EXPECT_EQ(SumSuffix(snap, ".tcp.bad_checksum"), led.of(DropReason::kTcpBadChecksum));
    EXPECT_EQ(SumSuffix(snap, ".tcp.dropped_no_pcb"),
              led.of(DropReason::kTcpNoPcb) + led.of(DropReason::kMigrationWindow));
    // Conservation at the snapshot instant, and no double terminals ever.
    EXPECT_EQ(led.minted, led.delivered + led.consumed + led.dropped + led.in_flight);
    EXPECT_EQ(led.conflicts, 0u);
    EXPECT_GT(led.minted, 0u);
    EXPECT_GT(led.delivered, 0u);
    EXPECT_GT(led.dropped, 0u);
  }
}

// A clean UDP echo run terminates every packet: nothing in flight once the
// workload's last response has been received, and nothing dropped.
TEST(JourneyConservation, CleanUdpRunLeavesNothingInFlight) {
  ResetJourney();
  ProtolatOptions opt;
  opt.proto = IpProto::kUdp;
  opt.msg_size = 64;
  opt.trials = 20;
  ASSERT_GT(RunProtolat(Config::kLibraryShmIpf, MachineProfile::DecStation5000(), opt), 0.0);
  const PacketJourney& j = PacketJourney::Get();
  EXPECT_GT(j.minted(), 0u);
  // Request + response per trial (plus warmup), all delivered to sockbufs.
  EXPECT_GE(j.delivered(), 2u * static_cast<uint64_t>(opt.trials));
  EXPECT_GT(j.consumed(), 0u) << "ARP traffic must be consumed, not leaked";
  EXPECT_EQ(j.dropped(), 0u);
  EXPECT_EQ(j.in_flight(), 0u);
  EXPECT_EQ(j.conflicts(), 0u);
  EXPECT_EQ(DropLedger::Get().total_drops(), 0u);
}

// Wire dup/delay fault events are ledgered as events: the duplicate is its
// own packet id linked to its parent, and neither event terminates a packet.
TEST(JourneyFaults, DupAndDelayAreEventsNotDrops) {
  ResetJourney();
  ProtolatOptions opt;
  opt.proto = IpProto::kUdp;
  opt.msg_size = 64;
  opt.trials = 20;
  ProtolatHooks hooks;
  hooks.on_world = [](World& w) {
    FaultPlan plan;
    plan.dup_rate = 0.2;
    plan.delay_rate = 0.2;
    plan.seed = 11;
    w.wire().SetFaults(plan);
  };
  ASSERT_GT(
      RunProtolatTraced(Config::kInKernel, MachineProfile::DecStation5000(), opt, hooks), 0.0);
  const DropLedger& led = DropLedger::Get();
  const PacketJourney& j = PacketJourney::Get();
  ASSERT_GT(led.total(DropReason::kWireDup), 0u);
  ASSERT_GT(led.total(DropReason::kWireDelay), 0u);
  // The dup/delay events themselves are not drops. Some duplicates DO die
  // downstream — a cloned response echoing into a since-closed UDP port —
  // and each of those deaths is attributed to its real reason.
  EXPECT_EQ(led.total_drops(), led.total(DropReason::kUdpNoPort));
  EXPECT_EQ(j.dropped(), led.total_drops()) << "every drop carried a packet id";
  EXPECT_EQ(j.conflicts(), 0u);
  // Every no-port death has a complete journey: born at a stack tx point or
  // as a wire clone, and terminated exactly once.
  for (const auto& ev : led.recent()) {
    if (ev.reason != DropReason::kUdpNoPort) {
      continue;
    }
    std::vector<HopEvent> hops = j.JourneyOf(ev.pkt);
    ASSERT_FALSE(hops.empty());
    EXPECT_TRUE(hops.front().node == "wire/dup" ||
                hops.front().node.find("/tx") != std::string::npos)
        << hops.front().node;
    EXPECT_EQ(hops.back().disp, PktDisposition::kDropped);
  }
  // Every duplicate minted a fresh id whose first hop links the parent id.
  uint64_t dup_clones = 0;
  for (const auto& ev : j.hops()) {
    if (ev.node == "wire/dup") {
      dup_clones++;
      EXPECT_NE(ev.aux, 0u) << "dup clone must link its parent packet";
      EXPECT_LT(ev.aux, ev.pkt) << "parent was minted before the clone";
    }
  }
  EXPECT_EQ(dup_clones, led.total(DropReason::kWireDup));
}

// ---------------------------------------------------------------------------
// Migration handover: strays hitting a stack whose pcb is mid-migration are
// attributed to migration-window, and still reconcile with dropped_no_pcb.

TEST(JourneyMigration, HandoverStraysAttributedToMigrationWindow) {
  // The handover window — pcb extracted on the library, session filter not
  // yet removed on the server — lasts about a millisecond of virtual time,
  // roughly one data-frame slot at 10Mb/s. A peer streaming into the library
  // host at line rate crosses the filter every ~1.2ms, so a frame lands in
  // the window on most handovers; wire delay faults add stragglers for the
  // rest. The simulator is deterministic, so scan seeds until one handover
  // catches a stray: the first hitting seed is stable run to run.
  constexpr size_t kTotal = 40 * 1024;
  std::vector<StatsRegistry::Entry> snap;
  bool caught = false;
  for (uint64_t seed = 1; seed <= 8 && !caught; seed++) {
    ResetJourney();
    World w(Config::kLibraryShmIpf, MachineProfile::DecStation5000());
    FaultPlan plan;
    plan.delay_rate = 0.3;
    plan.extra_delay = Millis(3);
    plan.seed = seed;
    w.wire().SetFaults(plan);
    bool done = false;

    // The peer streams toward the library host at line rate.
    w.SpawnApp(1, "tx", [&] {
      SocketApi* api = w.api(1);
      int lfd = *api->CreateSocket(IpProto::kTcp);
      api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
      api->Listen(lfd, 1);
      Result<int> cfd = api->Accept(lfd, nullptr);
      ASSERT_TRUE(cfd.ok());
      std::vector<uint8_t> data(kTotal, 0xab);
      size_t sent = 0;
      while (sent < kTotal) {
        Result<size_t> n =
            api->Send(*cfd, data.data() + sent, std::min<size_t>(4096, kTotal - sent), nullptr);
        ASSERT_TRUE(n.ok()) << ErrName(n.error());
        sent += *n;
      }
      api->Close(*cfd);
      api->Close(lfd);
    });

    // The library host reads just fast enough to keep the window open, then
    // hands the session back mid-stream: data segments racing the return
    // land on a stack whose pcb has been extracted and must be ledgered as
    // migration-window strays, not answered with RST.
    w.SpawnApp(0, "rx", [&] {
      LibraryNode* node = w.library_node(0);
      w.sim().current_thread()->SleepFor(Millis(10));
      int fd = *node->CreateSocket(IpProto::kTcp);
      ASSERT_TRUE(node->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
      size_t got = 0;
      bool returned = false;
      bool content_ok = true;
      uint8_t buf[4096];
      for (;;) {
        Result<size_t> n = node->Recv(fd, buf, sizeof(buf), nullptr, false);
        if (!n.ok() || *n == 0) {
          break;
        }
        for (size_t i = 0; i < *n; i++) {
          content_ok &= buf[i] == 0xab;
        }
        got += *n;
        if (!returned && got >= kTotal / 2) {
          ASSERT_TRUE(node->PrepareFork().ok());
          returned = true;
        }
        w.sim().current_thread()->SleepFor(Millis(1));
      }
      node->Close(fd);
      done = returned && content_ok && got == kTotal;
    });

    w.sim().Run(Seconds(120));
    ASSERT_TRUE(done) << "byte stream must survive the handover (seed " << seed << ")";
    ASSERT_EQ(w.net_server(0)->migrations_in(), 1u);
    if (DropLedger::Get().total(DropReason::kMigrationWindow) > 0) {
      caught = true;
      StatsRegistry reg;
      w.ExportStats(0, &reg);
      w.ExportStats(1, &reg);
      snap = reg.Snapshot();
      reg.Reset();
    }
  }

  const DropLedger& led = DropLedger::Get();
  ASSERT_TRUE(caught) << "no handover caught a stray in 8 seeds";
  // Reconciliation: every no-pcb drop in either stack is ledgered as either
  // a real no-pcb (RST answered) or a suppressed migration-window stray.
  EXPECT_EQ(SumSuffix(snap, ".tcp.dropped_no_pcb"),
            led.total(DropReason::kTcpNoPcb) + led.total(DropReason::kMigrationWindow));
  // Each migration-window stray carries a packet id whose journey ends in
  // dropped(migration-window).
  for (const auto& ev : led.recent()) {
    if (ev.reason != DropReason::kMigrationWindow) {
      continue;
    }
    ASSERT_NE(ev.pkt, 0u);
    EXPECT_EQ(PacketJourney::Get().DispositionOf(ev.pkt), PktDisposition::kDropped);
    EXPECT_EQ(PacketJourney::Get().ReasonOf(ev.pkt), DropReason::kMigrationWindow);
  }
  EXPECT_EQ(PacketJourney::Get().conflicts(), 0u);
}

// ---------------------------------------------------------------------------
// Per-queue gauges (Kernel::ExportStats): dropped / depth / high_watermark.

TEST(QueueGauges, EveryPacketQueueExportsDepthDroppedAndHighWatermark) {
  ResetJourney();
  std::vector<StatsRegistry::Entry> snap;
  ProtolatHooks hooks;
  hooks.on_done = [&](World& w) {
    StatsRegistry reg;
    w.ExportStats(0, &reg);
    w.ExportStats(1, &reg);
    snap = reg.Snapshot();
    reg.Reset();
  };
  ProtolatOptions opt;
  opt.proto = IpProto::kUdp;
  opt.msg_size = 64;
  opt.trials = 10;
  ASSERT_GT(
      RunProtolatTraced(Config::kLibraryShmIpf, MachineProfile::DecStation5000(), opt, hooks),
      0.0);
  size_t hwm_gauges = 0, depth_gauges = 0, dropped_gauges = 0;
  uint64_t max_hwm = 0;
  for (const auto& e : snap) {
    auto ends_with = [&](const std::string& s) {
      return e.name.size() >= s.size() &&
             e.name.compare(e.name.size() - s.size(), s.size(), s) == 0;
    };
    if (ends_with(".high_watermark")) {
      hwm_gauges++;
      max_hwm = std::max(max_hwm, e.value);
      // The matching depth/dropped gauges exist for the same queue.
      std::string base = e.name.substr(0, e.name.size() - std::string(".high_watermark").size());
      bool have_depth = false, have_dropped = false;
      for (const auto& o : snap) {
        have_depth |= o.name == base + ".depth";
        have_dropped |= o.name == base + ".dropped";
      }
      EXPECT_TRUE(have_depth) << base;
      EXPECT_TRUE(have_dropped) << base;
    }
    if (ends_with(".depth")) depth_gauges++;
    if (ends_with(".dropped")) dropped_gauges++;
  }
  ASSERT_GT(hwm_gauges, 0u) << "no per-queue gauges registered";
  EXPECT_EQ(hwm_gauges, depth_gauges);
  EXPECT_GE(dropped_gauges, hwm_gauges);
  EXPECT_GT(max_hwm, 0u) << "traffic must have raised some queue's high watermark";
}

// ---------------------------------------------------------------------------
// Zero cost: the recorders observe everything and charge nothing. With both
// singletons disabled (no ids minted, no hops, no ledger) virtual time is
// byte-identical to the fully-recorded run — the Table 2/3/4 guarantee.

TEST(JourneyZeroCost, DisabledAndEnabledRunsAreVirtualTimeIdentical) {
  ProtolatOptions opt;
  opt.proto = IpProto::kTcp;
  opt.msg_size = 512;
  opt.trials = 10;
  const MachineProfile prof = MachineProfile::DecStation5000();
  for (Config config : {Config::kInKernel, Config::kServer, Config::kLibraryShmIpf}) {
    ResetJourney();
    double recorded = RunProtolat(config, prof, opt);
    ASSERT_GT(PacketJourney::Get().minted(), 0u) << ConfigName(config);
    ASSERT_GT(PacketJourney::Get().hops().size(), 0u) << ConfigName(config);

    ResetJourney();
    DropLedger::Get().set_enabled(false);
    PacketJourney::Get().set_enabled(false);
    double plain = RunProtolat(config, prof, opt);
    EXPECT_EQ(PacketJourney::Get().minted(), 0u) << ConfigName(config);
    EXPECT_TRUE(PacketJourney::Get().hops().empty()) << ConfigName(config);

    EXPECT_EQ(plain, recorded) << ConfigName(config);
    DropLedger::Get().set_enabled(true);
    PacketJourney::Get().set_enabled(true);
  }
}

}  // namespace
}  // namespace psd
