// RpcOpRecorder / RpcClientCounter unit tests: per-slot accumulation, the
// out-of-range overflow bucket, worker-merge equivalence, and the client
// counter's amplification arithmetic.
#include <gtest/gtest.h>

#include "src/obs/rpc_account.h"

namespace psd {
namespace {

#ifndef PSD_OBS_DISABLE_RPC_ACCOUNT

TEST(RpcOpRecorder, RecordsPerSlotCountsBytesAndSplitTimes) {
  RpcOpRecorder r(4);
  r.Record(1, /*bytes_in=*/100, /*bytes_out=*/20, /*queue_wait=*/Micros(5),
           /*service=*/Micros(50));
  r.Record(1, 60, 4, Micros(15), Micros(30));
  r.Record(3, 8, 8, Micros(1), Micros(2));

  EXPECT_EQ(r.op(1).count, 2u);
  EXPECT_EQ(r.op(1).bytes_in, 160u);
  EXPECT_EQ(r.op(1).bytes_out, 24u);
  EXPECT_EQ(r.op(1).queue_wait.max(), Micros(15));
  EXPECT_EQ(r.op(1).service.total(), Micros(80));
  EXPECT_EQ(r.op(0).count, 0u);
  EXPECT_EQ(r.op(3).count, 1u);
  EXPECT_EQ(r.total_count(), 3u);
  EXPECT_EQ(r.unknown(), 0u);
}

TEST(RpcOpRecorder, OutOfRangeSlotLandsInUnknown) {
  RpcOpRecorder r(2);
  r.Record(-1, 1, 1, 0, 0);
  r.Record(2, 1, 1, 0, 0);
  r.Record(99, 1, 1, 0, 0);
  EXPECT_EQ(r.unknown(), 3u);
  EXPECT_EQ(r.total_count(), 0u) << "unknown ops must not pollute per-op totals";
}

TEST(RpcOpRecorder, MergeFoldsWorkersIntoOneView) {
  // The UxServer contract: one recorder per worker fiber, merged at export.
  RpcOpRecorder a(3);
  RpcOpRecorder b(3);
  a.Record(0, 10, 1, Micros(2), Micros(20));
  a.Record(2, 30, 3, Micros(4), Micros(40));
  b.Record(0, 50, 5, Micros(6), Micros(60));
  b.Record(99, 0, 0, 0, 0);  // unknown merges too

  a.Merge(b);
  EXPECT_EQ(a.op(0).count, 2u);
  EXPECT_EQ(a.op(0).bytes_in, 60u);
  EXPECT_EQ(a.op(0).queue_wait.max(), Micros(6));
  EXPECT_EQ(a.op(0).service.min(), Micros(20));
  EXPECT_EQ(a.op(2).count, 1u);
  EXPECT_EQ(a.total_count(), 3u);
  EXPECT_EQ(a.unknown(), 1u);
}

TEST(RpcOpRecorder, ResetZeroesEverySlot) {
  RpcOpRecorder r(2);
  r.Record(0, 1, 1, Micros(1), Micros(1));
  r.Record(9, 0, 0, 0, 0);
  r.Reset();
  EXPECT_EQ(r.total_count(), 0u);
  EXPECT_EQ(r.unknown(), 0u);
  EXPECT_EQ(r.op(0).count, 0u);
  EXPECT_EQ(r.op(0).queue_wait.count(), 0u);
}

TEST(RpcClientCounter, TotalsIncludeUnmappedOpsPerSlotCountsDoNot) {
  RpcClientCounter c(3);
  c.Count(0);
  c.Count(0);
  c.Count(2);
  c.Count(-1);  // an op the caller could not map still counts as one RPC
  EXPECT_EQ(c.total(), 4u);
  EXPECT_EQ(c.count(0), 2u);
  EXPECT_EQ(c.count(1), 0u);
  EXPECT_EQ(c.count(2), 1u);

  c.Reset();
  EXPECT_EQ(c.total(), 0u);
  EXPECT_EQ(c.count(0), 0u);
}

#endif  // PSD_OBS_DISABLE_RPC_ACCOUNT

}  // namespace
}  // namespace psd
