// StatsRegistry unit tests: snapshot ordering, the duplicate-gauge guard
// (assert in debug builds, reject-and-count in release builds), and the
// Reset contract that lets one registry span back-to-back runs.
#include <gtest/gtest.h>

#include "src/obs/stats.h"

namespace psd {
namespace {

TEST(StatsRegistry, SnapshotReadsLiveValuesSortedByName) {
  StatsRegistry reg;
  uint64_t a = 1;
  uint64_t b = 2;
  EXPECT_TRUE(reg.RegisterGauge("zeta", [&] { return b; }));
  EXPECT_TRUE(reg.RegisterGauge("alpha", [&] { return a; }));
  EXPECT_EQ(reg.size(), 2u);

  std::vector<StatsRegistry::Entry> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[0].value, 1u);
  EXPECT_EQ(snap[1].name, "zeta");
  EXPECT_EQ(snap[1].value, 2u);

  // Gauges are callbacks, not copies: a later snapshot sees the new value.
  a = 42;
  EXPECT_EQ(reg.Snapshot()[0].value, 42u);
}

#ifdef NDEBUG
TEST(StatsRegistry, DuplicateGaugeIsRejectedAndCounted) {
  // Release builds: the duplicate is refused, the first registration stays
  // live, and the collision is visible through duplicates_rejected().
  StatsRegistry reg;
  EXPECT_TRUE(reg.RegisterGauge("dup", [] { return uint64_t{1}; }));
  EXPECT_FALSE(reg.RegisterGauge("dup", [] { return uint64_t{2}; }));
  EXPECT_EQ(reg.duplicates_rejected(), 1u);
  EXPECT_EQ(reg.size(), 1u);

  std::vector<StatsRegistry::Entry> snap = reg.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].value, 1u) << "first registration must stay live";
}
#else
using StatsRegistryDeathTest = ::testing::Test;

TEST(StatsRegistryDeathTest, DuplicateGaugeAssertsInDebugBuilds) {
  StatsRegistry reg;
  EXPECT_TRUE(reg.RegisterGauge("dup", [] { return uint64_t{1}; }));
  EXPECT_DEATH(reg.RegisterGauge("dup", [] { return uint64_t{2}; }),
               "duplicate gauge name");
}
#endif

TEST(StatsRegistry, ResetClearsGaugesNamesAndRejectCount) {
  StatsRegistry reg;
  EXPECT_TRUE(reg.RegisterGauge("g", [] { return uint64_t{7}; }));
  reg.Reset();
  EXPECT_EQ(reg.size(), 0u);
  EXPECT_TRUE(reg.Snapshot().empty());
  // The name is free again after Reset — the next World's ExportStats can
  // re-register the same counter names.
  EXPECT_TRUE(reg.RegisterGauge("g", [] { return uint64_t{8}; }));
  EXPECT_EQ(reg.Snapshot()[0].value, 8u);
}

}  // namespace
}  // namespace psd
