// Short-read regression tests for the recv path under every placement: a
// framed message split across many Sends (with virtual-time gaps, so each
// piece is a separate segment on the wire) must reassemble byte-perfectly
// whether the reader drains in big gulps through a framing adapter or one
// byte per Recv call. Guards the ByteStream contract (src/proto/adapter.h)
// that the framing parsers are built against: Recv may return any prefix of
// what was sent, but never invents, reorders, or loses bytes.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/base/rng.h"
#include "src/proto/framing.h"
#include "src/testbed/world.h"

namespace psd {
namespace {

constexpr Config kAllConfigs[] = {
    Config::kInKernel, Config::kServer, Config::kLibraryIpc, Config::kLibraryShm,
    Config::kLibraryShmIpf,
};

// One pfx-framed message whose wire bytes arrive in `pieces` separate Sends
// spaced apart in virtual time. `one_byte_reads` drains with Recv(len=1)
// into the adapter's ByteStream instead of the default gulp size.
void SplitFrameCase(Config config, size_t payload_len, size_t pieces, bool one_byte_reads) {
  World w(config, MachineProfile::DecStation5000());
  bool rx_ok = false;

  // Sender composes the frame out-of-band so it can cut it anywhere,
  // including inside the 4-byte header.
  std::vector<uint8_t> frame(PfxStream::kHeaderLen + payload_len);
  frame[0] = static_cast<uint8_t>(payload_len >> 24);
  frame[1] = static_cast<uint8_t>(payload_len >> 16);
  frame[2] = static_cast<uint8_t>(payload_len >> 8);
  frame[3] = static_cast<uint8_t>(payload_len);
  Rng gen = Rng::Stream(7, 1);
  for (size_t i = PfxStream::kHeaderLen; i < frame.size(); i++) {
    frame[i] = static_cast<uint8_t>(gen.Next());
  }

  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5600}).ok());
    ASSERT_TRUE(api->Listen(lfd, 1).ok());
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());

    // A ByteStream that narrows every Recv to one byte: the adversarial
    // reader the framing contract promises to survive.
    class OneByteStream : public ByteStream {
     public:
      OneByteStream(SocketApi* api, int fd) : api_(api), fd_(fd) {}
      Result<size_t> Read(uint8_t* out, size_t len) override {
        return api_->Recv(fd_, out, len > 0 ? 1 : 0);
      }
      Result<size_t> Write(const uint8_t* data, size_t len) override {
        return api_->Send(fd_, data, len);
      }

     private:
      SocketApi* api_;
      int fd_;
    };

    SockByteStream gulp(api, *cfd);
    OneByteStream trickle(api, *cfd);
    ByteStream* bs = one_byte_reads ? static_cast<ByteStream*>(&trickle) : &gulp;
    PfxStream pfx(bs, 1 << 16);
    std::vector<uint8_t> out(payload_len + 1);
    Result<size_t> n = pfx.RecvMsg(out.data(), out.size());
    ASSERT_TRUE(n.ok()) << ErrName(n.error());
    ASSERT_EQ(*n, payload_len);
    ASSERT_EQ(0, std::memcmp(out.data(), frame.data() + PfxStream::kHeaderLen, payload_len));
    EXPECT_EQ(pfx.RecvMsg(out.data(), out.size()).error(), Err::kEof);
    api->Close(*cfd);
    api->Close(lfd);
    rx_ok = true;
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(5));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5600}).ok());
    size_t per = (frame.size() + pieces - 1) / pieces;
    size_t off = 0;
    while (off < frame.size()) {
      size_t n = std::min(per, frame.size() - off);
      size_t sent = 0;
      while (sent < n) {
        Result<size_t> s = api->Send(fd, frame.data() + off + sent, n - sent, nullptr);
        ASSERT_TRUE(s.ok()) << ErrName(s.error());
        sent += *s;
      }
      off += n;
      // The gap flushes each piece as its own segment: the receiver sees
      // the header itself arrive in fragments.
      w.sim().current_thread()->SleepFor(Millis(2));
    }
    api->Close(fd);
  });
  w.sim().Run(Seconds(60));
  EXPECT_TRUE(rx_ok) << ConfigName(config) << " payload=" << payload_len << " pieces=" << pieces;
}

TEST(ShortRead, PfxFrameSplitAcrossSegmentsEveryPlacement) {
  for (Config c : kAllConfigs) {
    SplitFrameCase(c, 1500, 7, /*one_byte_reads=*/false);
  }
}

TEST(ShortRead, HeaderCutOneBytePerSegment) {
  // 13 pieces over an 8-byte-larger-than-header frame cuts inside the
  // header; every piece is 1-2 bytes.
  for (Config c : kAllConfigs) {
    SplitFrameCase(c, 9, 13, /*one_byte_reads=*/false);
  }
}

TEST(ShortRead, OneByteAtATimeReader) {
  for (Config c : kAllConfigs) {
    SplitFrameCase(c, 600, 5, /*one_byte_reads=*/true);
  }
}

}  // namespace
}  // namespace psd
