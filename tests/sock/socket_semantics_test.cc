// BSD socket semantics: blocking behaviour, EOF, shutdown, peek, errors,
// the ten data-movement veneers, and socket options.
#include <gtest/gtest.h>

#include "src/api/bsd.h"
#include "src/sock/socket.h"
#include "src/testbed/world.h"

namespace psd {
namespace {

class SockTest : public ::testing::Test {
 protected:
  SockTest() : w(Config::kInKernel, MachineProfile::DecStation5000()) {}
  World w;
};

TEST_F(SockTest, RecvPeekDoesNotConsume) {
  std::string first, second;
  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 1);
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    uint8_t buf[16];
    Result<size_t> n = api->Recv(*cfd, buf, 5, nullptr, /*peek=*/true);
    ASSERT_TRUE(n.ok());
    first.assign(buf, buf + *n);
    n = api->Recv(*cfd, buf, 5, nullptr, false);
    ASSERT_TRUE(n.ok());
    second.assign(buf, buf + *n);
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(5));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
    api->Send(fd, reinterpret_cast<const uint8_t*>("hello"), 5, nullptr);
  });
  w.sim().Run(Seconds(10));
  EXPECT_EQ(first, "hello");
  EXPECT_EQ(second, "hello");
}

TEST_F(SockTest, ShutdownWriteDeliversEofButAllowsRead) {
  bool checked = false;
  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 1);
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    uint8_t buf[8];
    // Peer shut down its write side: we see EOF...
    Result<size_t> n = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 0u);
    // ...but can still send to it (half-close).
    Result<size_t> s = api->Send(*cfd, reinterpret_cast<const uint8_t*>("bye"), 3, nullptr);
    EXPECT_TRUE(s.ok());
    api->Close(*cfd);
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(5));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
    ASSERT_TRUE(api->Shutdown(fd, false, true).ok());
    uint8_t buf[8];
    Result<size_t> n = api->Recv(fd, buf, sizeof(buf), nullptr, false);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 3u);
    EXPECT_EQ(std::string(buf, buf + 3), "bye");
    checked = true;
  });
  w.sim().Run(Seconds(20));
  EXPECT_TRUE(checked);
}

TEST_F(SockTest, SendAfterShutdownIsPipe) {
  bool checked = false;
  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 1);
    api->Accept(lfd, nullptr);
    w.sim().current_thread()->SleepFor(Seconds(5));
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(5));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
    api->Shutdown(fd, false, true);
    uint8_t b = 1;
    Result<size_t> r = api->Send(fd, &b, 1, nullptr);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error(), Err::kPipe);
    checked = true;
  });
  w.sim().Run(Seconds(20));
  EXPECT_TRUE(checked);
}

TEST_F(SockTest, BindToTakenPortIsAddrInUse) {
  bool checked = false;
  w.SpawnApp(0, "app", [&] {
    SocketApi* api = w.api(0);
    int a = *api->CreateSocket(IpProto::kUdp);
    int b = *api->CreateSocket(IpProto::kUdp);
    ASSERT_TRUE(api->Bind(a, SockAddrIn{Ipv4Addr::Any(), 9000}).ok());
    Result<void> r = api->Bind(b, SockAddrIn{Ipv4Addr::Any(), 9000});
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error(), Err::kAddrInUse);
    // Closing releases the name for reuse.
    api->Close(a);
    EXPECT_TRUE(api->Bind(b, SockAddrIn{Ipv4Addr::Any(), 9000}).ok());
    checked = true;
  });
  w.sim().Run(Seconds(5));
  EXPECT_TRUE(checked);
}

TEST_F(SockTest, BadDescriptorIsEbadf) {
  bool checked = false;
  w.SpawnApp(0, "app", [&] {
    SocketApi* api = w.api(0);
    uint8_t b;
    EXPECT_EQ(api->Recv(999, &b, 1, nullptr, false).error(), Err::kBadF);
    EXPECT_EQ(api->Send(999, &b, 1, nullptr).error(), Err::kBadF);
    EXPECT_EQ(api->Close(999).error(), Err::kBadF);
    checked = true;
  });
  w.sim().Run(Seconds(5));
  EXPECT_TRUE(checked);
}

TEST_F(SockTest, TenDataMovementCalls) {
  // The paper's "ten different ways to move data through a session" (§3.2):
  // send/sendto/sendmsg/write/writev and recv/recvfrom/recvmsg/read/readv.
  bool checked = false;
  w.SpawnApp(1, "rx", [&] {
    BsdApi bsd(w.api(1));
    int fd = *bsd.socket(IpProto::kUdp);
    bsd.bind(fd, SockAddrIn{Ipv4Addr::Any(), 9100});

    uint8_t b1[16], b2[16];
    // recv
    EXPECT_EQ(*bsd.recv(fd, b1, sizeof(b1)), 2u);
    // recvfrom
    SockAddrIn from;
    EXPECT_EQ(*bsd.recvfrom(fd, b1, sizeof(b1), &from), 2u);
    EXPECT_EQ(from.addr, w.addr(0));
    // read
    EXPECT_EQ(*bsd.read(fd, b1, sizeof(b1)), 2u);
    // readv (datagram semantics: each element consumes one datagram)
    std::vector<IoVec> iov = {{b1, 1}, {b2, 1}};
    EXPECT_EQ(*bsd.readv(fd, iov), 2u);
    // recvmsg
    MsgHdr mh;
    mh.name = &from;
    mh.iov = {{b1, 2}};
    EXPECT_EQ(*bsd.recvmsg(fd, &mh), 2u);
    checked = true;
  });
  w.SpawnApp(0, "tx", [&] {
    BsdApi bsd(w.api(0));
    int fd = *bsd.socket(IpProto::kUdp);
    SockAddrIn dst{w.addr(1), 9100};
    bsd.api()->Connect(fd, dst);
    w.sim().current_thread()->SleepFor(Millis(10));
    uint8_t payload[2] = {0xaa, 0xbb};
    // send (connected)
    EXPECT_TRUE(bsd.send(fd, payload, 2).ok());
    // sendto
    EXPECT_TRUE(bsd.sendto(fd, payload, 2, dst).ok());
    // write
    EXPECT_TRUE(bsd.write(fd, payload, 2).ok());
    // writev (one datagram per vector element for UDP)
    std::vector<IoVec> iov = {{payload, 2}, {payload, 2}};
    EXPECT_TRUE(bsd.writev(fd, iov).ok());
    // sendmsg
    MsgHdr mh;
    mh.name = &dst;
    mh.iov = {{payload, 1}, {payload + 1, 1}};
    EXPECT_TRUE(bsd.sendmsg(fd, mh).ok());
  });
  w.sim().Run(Seconds(10));
  EXPECT_TRUE(checked);
}

TEST_F(SockTest, SmallBuffersThrottleSender) {
  // A 2KB receive buffer forces the window shut until the reader drains.
  bool done = false;
  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->SetOpt(lfd, SockOpt::kRcvBuf, 2048);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 1);
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    size_t got = 0;
    uint8_t buf[512];
    while (got < 20 * 1024) {
      // Slow reader.
      w.sim().current_thread()->SleepFor(Millis(5));
      Result<size_t> n = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
      if (!n.ok() || *n == 0) {
        break;
      }
      got += *n;
    }
    done = got == 20 * 1024;
  });
  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(5));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
    std::vector<uint8_t> data(20 * 1024, 0x71);
    size_t sent = 0;
    while (sent < data.size()) {
      Result<size_t> n = api->Send(fd, data.data() + sent, data.size() - sent, nullptr);
      ASSERT_TRUE(n.ok());
      sent += *n;
    }
    api->Close(fd);
  });
  w.sim().Run(Seconds(120));
  EXPECT_TRUE(done);
}

TEST_F(SockTest, UrgentDataTravelsInline) {
  // Out-of-band data (tcp_output URG flag + urgent pointer) is delivered
  // inline to the reader, BSD style.
  bool got = false;
  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 1);
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    uint8_t buf[8];
    Result<size_t> n = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
    got = n.ok() && *n == 3 && buf[2] == 0x99;
  });
  w.SpawnApp(0, "tx", [&] {
    // Drive the socket layer directly to reach the urgent-send interface.
    Socket sock(w.kernel_node(0)->stack(), IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(5));
    ASSERT_TRUE(sock.Connect(SockAddrIn{w.addr(1), 5001}).ok());
    TcpPcb* pcb = sock.tcp_pcb();
    uint32_t up_before = pcb->snd_up;
    uint8_t oob[3] = {1, 2, 0x99};
    ASSERT_TRUE(sock.Send(oob, 3, nullptr, /*urgent=*/true).ok());
    EXPECT_TRUE(SeqGt(pcb->snd_up, up_before)) << "urgent pointer must advance";
    w.sim().current_thread()->SleepFor(Seconds(1));
    sock.Close();
  });
  w.sim().Run(Seconds(10));
  EXPECT_TRUE(got);
}

}  // namespace
}  // namespace psd
