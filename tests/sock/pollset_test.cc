// PollSet semantics through the in-kernel placement's PollCreate/PollAdd/
// PollWait surface: level-at-add seeding, level-triggered re-reporting,
// stale-edge suppression, interest masks, removal, and the edge/wakeup
// observability counters that the C10K bench reads.
#include <gtest/gtest.h>

#include "src/api/kernel_node.h"
#include "src/sock/pollset.h"
#include "src/testbed/world.h"

namespace psd {
namespace {

class PollSetTest : public ::testing::Test {
 protected:
  PollSetTest() : w(Config::kInKernel, MachineProfile::DecStation5000()) {}
  World w;
};

// Readiness that predates registration must still report (epoll's
// level-triggered contract at EPOLL_CTL_ADD time), keep reporting until the
// data is consumed, and stop the moment it is.
TEST_F(PollSetTest, LevelTriggeredAtAddAndUntilConsumed) {
  bool done = false;
  w.SpawnApp(1, "srv", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 1);
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());

    // Let the client's 5 bytes land before the poll set even exists.
    w.sim().current_thread()->SleepFor(Millis(50));

    int pfd = *api->PollCreate();
    ASSERT_TRUE(api->PollAdd(pfd, *cfd, kPollEventIn).ok());
    std::vector<PollEvent> ev;
    // Level-at-add: the pre-existing data reports without any new edge.
    Result<int> n = api->PollWait(pfd, &ev, 0);
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(*n, 1);
    EXPECT_EQ(ev[0].fd, *cfd);
    EXPECT_EQ(ev[0].events & kPollEventIn, kPollEventIn);
    // Level-triggered: unconsumed data keeps reporting.
    n = api->PollWait(pfd, &ev, 0);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 1);
    // Consume it; the event must stop reporting.
    uint8_t buf[8];
    ASSERT_TRUE(api->Recv(*cfd, buf, sizeof(buf), nullptr, false).ok());
    n = api->PollWait(pfd, &ev, 0);
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 0);
    api->PollClose(pfd);
    api->Close(*cfd);
    api->Close(lfd);
    done = true;
  });
  w.SpawnApp(0, "cli", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(5));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
    api->Send(fd, reinterpret_cast<const uint8_t*>("hello"), 5, nullptr);
    uint8_t buf[4];
    api->Recv(fd, buf, sizeof(buf), nullptr, false);  // park until server closes
    api->Close(fd);
  });
  w.sim().Run(Seconds(30));
  EXPECT_TRUE(done);
}

// A blocked PollWait is woken by a readiness edge, and the set's counters
// record the edge, the charged wakeup, and the block.
TEST_F(PollSetTest, BlockedWaitWakesOnEdgeAndCountsIt) {
  bool done = false;
  int server_pfd = -1;
  w.SpawnApp(1, "srv", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 1);
    int pfd = *api->PollCreate();
    server_pfd = pfd;
    ASSERT_TRUE(api->PollAdd(pfd, lfd, kPollEventIn).ok());
    // Nothing is ready yet: this blocks until the client's SYN completes
    // the handshake and the listener becomes acceptable.
    std::vector<PollEvent> ev;
    Result<int> n = api->PollWait(pfd, &ev, Seconds(10));
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(*n, 1);
    EXPECT_EQ(ev[0].fd, lfd);
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    api->Close(*cfd);
    api->Close(lfd);
    done = true;
  });
  w.SpawnApp(0, "cli", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(20));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
    uint8_t buf[4];
    api->Recv(fd, buf, sizeof(buf), nullptr, false);  // wait for server close
    api->Close(fd);
  });
  w.sim().Run(Seconds(30));
  ASSERT_TRUE(done);
  PollSet* set = w.kernel_node(1)->poll_set(server_pfd);
  ASSERT_NE(set, nullptr);
  EXPECT_GE(set->edges(), 1u);        // accept-readiness pushed an edge
  EXPECT_GE(set->wakeups(), 1u);      // ...which woke a blocked waiter
  EXPECT_GE(set->wait_blocks(), 1u);  // ...who had actually blocked
}

// Removing a socket stops its events; re-adding updates mask and cookie in
// place; waiting on an empty-interest set times out cleanly.
TEST_F(PollSetTest, RemoveAndTimeoutSemantics) {
  bool done = false;
  w.SpawnApp(1, "srv", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 1);
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    w.sim().current_thread()->SleepFor(Millis(50));  // client data lands

    int pfd = *api->PollCreate();
    ASSERT_TRUE(api->PollAdd(pfd, *cfd, kPollEventIn).ok());
    ASSERT_TRUE(api->PollRemove(pfd, *cfd).ok());
    std::vector<PollEvent> ev;
    // Removed: the buffered data must not report, and the wait times out.
    SimTime before = w.sim().Now();
    Result<int> n = api->PollWait(pfd, &ev, Millis(200));
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 0);
    EXPECT_GE(w.sim().Now() - before, Millis(200));
    // Double-remove is an error.
    EXPECT_FALSE(api->PollRemove(pfd, *cfd).ok());
    // Writable interest on a connected socket with send-buffer space
    // reports immediately.
    ASSERT_TRUE(api->PollAdd(pfd, *cfd, kPollEventOut).ok());
    n = api->PollWait(pfd, &ev, 0);
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(*n, 1);
    EXPECT_EQ(ev[0].events & kPollEventOut, kPollEventOut);
    api->PollClose(pfd);
    // Operations on a closed poll descriptor fail.
    EXPECT_FALSE(api->PollAdd(pfd, *cfd, kPollEventIn).ok());
    api->Close(*cfd);
    api->Close(lfd);
    done = true;
  });
  w.SpawnApp(0, "cli", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(5));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
    api->Send(fd, reinterpret_cast<const uint8_t*>("data"), 4, nullptr);
    uint8_t buf[4];
    api->Recv(fd, buf, sizeof(buf), nullptr, false);
    api->Close(fd);
  });
  w.sim().Run(Seconds(30));
  EXPECT_TRUE(done);
}

// One set watching many sockets wakes in O(ready): only the socket with
// traffic is harvested, not the whole interest set.
TEST_F(PollSetTest, HarvestReturnsOnlyReadySockets) {
  bool done = false;
  constexpr int kIdle = 8;
  w.SpawnApp(1, "srv", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, kIdle + 1);
    int pfd = *api->PollCreate();
    std::vector<int> fds;
    for (int i = 0; i < kIdle + 1; i++) {
      Result<int> cfd = api->Accept(lfd, nullptr);
      ASSERT_TRUE(cfd.ok());
      fds.push_back(*cfd);
      ASSERT_TRUE(api->PollAdd(pfd, *cfd, kPollEventIn).ok());
    }
    // Exactly one connection (the last accepted) carries data.
    std::vector<PollEvent> ev;
    Result<int> n = api->PollWait(pfd, &ev, Seconds(10));
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(*n, 1) << "idle sockets leaked into the harvest";
    uint8_t buf[8];
    Result<size_t> got = api->Recv(ev[0].fd, buf, sizeof(buf), nullptr, false);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, 4u);
    for (int fd : fds) {
      api->Close(fd);
    }
    api->PollClose(pfd);
    api->Close(lfd);
    done = true;
  });
  w.SpawnApp(0, "cli", [&] {
    SocketApi* api = w.api(0);
    std::vector<int> fds;
    w.sim().current_thread()->SleepFor(Millis(5));
    for (int i = 0; i < kIdle + 1; i++) {
      int fd = *api->CreateSocket(IpProto::kTcp);
      ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
      fds.push_back(fd);
    }
    w.sim().current_thread()->SleepFor(Millis(100));  // all adds settle
    api->Send(fds.back(), reinterpret_cast<const uint8_t*>("ping"), 4, nullptr);
    uint8_t buf[4];
    api->Recv(fds.back(), buf, sizeof(buf), nullptr, false);
    for (int fd : fds) {
      api->Close(fd);
    }
  });
  w.sim().Run(Seconds(30));
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace psd
