#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "src/base/rng.h"
#include "src/mbuf/mbuf.h"

namespace psd {
namespace {

std::vector<uint8_t> Pattern(size_t n, uint8_t seed = 0) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; i++) {
    v[i] = static_cast<uint8_t>(seed + i * 7);
  }
  return v;
}

TEST(Mbuf, AppendAndReadBack) {
  std::vector<uint8_t> data = Pattern(5000);
  Chain c;
  c.Append(data.data(), data.size());
  EXPECT_EQ(c.len(), 5000u);
  EXPECT_TRUE(c.Invariant());
  EXPECT_EQ(c.ToVector(), data);
}

TEST(Mbuf, SmallDataUsesInlineMbuf) {
  Chain c = Chain::FromBytes(Pattern(10).data(), 10);
  EXPECT_EQ(c.SegmentCount(), 1);
  EXPECT_FALSE(c.head()->is_cluster());
}

TEST(Mbuf, LargeDataUsesClusters) {
  std::vector<uint8_t> data = Pattern(kClusterBytes * 2 + 17);
  Chain c = Chain::FromBytes(data.data(), data.size());
  EXPECT_TRUE(c.head()->is_cluster());
  EXPECT_EQ(c.ToVector(), data);
}

TEST(Mbuf, PrependHeaders) {
  std::vector<uint8_t> payload = Pattern(100);
  Chain c = Chain::FromBytes(payload.data(), payload.size());
  uint8_t* tcp = c.Prepend(20);
  std::fill(tcp, tcp + 20, 0xAA);
  uint8_t* ip = c.Prepend(20);
  std::fill(ip, ip + 20, 0xBB);
  uint8_t* eth = c.Prepend(14);
  std::fill(eth, eth + 14, 0xCC);
  EXPECT_EQ(c.len(), 154u);
  std::vector<uint8_t> out = c.ToVector();
  EXPECT_EQ(out[0], 0xCC);
  EXPECT_EQ(out[14], 0xBB);
  EXPECT_EQ(out[34], 0xAA);
  EXPECT_EQ(std::vector<uint8_t>(out.begin() + 54, out.end()), payload);
}

TEST(Mbuf, TrimFrontBack) {
  std::vector<uint8_t> data = Pattern(3000);
  Chain c = Chain::FromBytes(data.data(), data.size());
  c.TrimFront(100);
  c.TrimBack(200);
  EXPECT_EQ(c.len(), 2700u);
  EXPECT_EQ(c.ToVector(),
            std::vector<uint8_t>(data.begin() + 100, data.end() - 200));
}

TEST(Mbuf, TrimToEmpty) {
  Chain c = Chain::FromBytes(Pattern(50).data(), 50);
  c.TrimFront(50);
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(c.Invariant());
  c.Append(Pattern(5).data(), 5);
  EXPECT_EQ(c.len(), 5u);
}

TEST(Mbuf, CopyRangeSharesClusters) {
  std::vector<uint8_t> data = Pattern(4000);
  Chain c = Chain::FromBytes(data.data(), data.size());
  Chain copy = c.CopyRange(100, 3000);
  EXPECT_EQ(copy.len(), 3000u);
  EXPECT_EQ(copy.ToVector(),
            std::vector<uint8_t>(data.begin() + 100, data.begin() + 3100));
  // Cluster storage is shared, not duplicated.
  EXPECT_TRUE(copy.head()->shared() || !copy.head()->is_cluster());
}

TEST(Mbuf, SplitFront) {
  std::vector<uint8_t> data = Pattern(1000);
  Chain c = Chain::FromBytes(data.data(), data.size());
  Chain front = c.SplitFront(300);
  EXPECT_EQ(front.len(), 300u);
  EXPECT_EQ(c.len(), 700u);
  EXPECT_EQ(front.ToVector(), std::vector<uint8_t>(data.begin(), data.begin() + 300));
  EXPECT_EQ(c.ToVector(), std::vector<uint8_t>(data.begin() + 300, data.end()));
}

TEST(Mbuf, PullupMakesContiguous) {
  Chain c;
  c.Append(Pattern(10, 1).data(), 10);
  Chain c2;
  c2.Append(Pattern(10, 2).data(), 10);
  c.AppendChain(std::move(c2));
  ASSERT_GE(c.SegmentCount(), 1);
  const uint8_t* p = c.Pullup(15);
  ASSERT_NE(p, nullptr);
  std::vector<uint8_t> expect = Pattern(10, 1);
  std::vector<uint8_t> second = Pattern(10, 2);
  expect.insert(expect.end(), second.begin(), second.begin() + 5);
  EXPECT_EQ(std::vector<uint8_t>(p, p + 15), expect);
  EXPECT_EQ(c.len(), 20u);
}

TEST(Mbuf, PullupBeyondLengthFails) {
  Chain c = Chain::FromBytes(Pattern(10).data(), 10);
  EXPECT_EQ(c.Pullup(11), nullptr);
}

TEST(Mbuf, ReferencingSharedBuffer) {
  auto owner = std::make_shared<std::vector<uint8_t>>(Pattern(500));
  Chain c = Chain::Referencing(owner, 100, 300);
  EXPECT_EQ(c.len(), 300u);
  EXPECT_EQ(c.ToVector(),
            std::vector<uint8_t>(owner->begin() + 100, owner->begin() + 400));
  // Prepending to a read-only reference allocates a fresh header mbuf.
  uint8_t* h = c.Prepend(8);
  std::fill(h, h + 8, 0x99);
  EXPECT_EQ(c.len(), 308u);
  EXPECT_EQ(c.ToVector()[0], 0x99);
  EXPECT_EQ(c.ToVector()[8], (*owner)[100]);
}

TEST(Mbuf, ReferencingRaw) {
  std::vector<uint8_t> data = Pattern(64);
  Chain c = Chain::ReferencingRaw(data.data(), data.size());
  EXPECT_EQ(c.ToVector(), data);
}

TEST(Mbuf, ChecksumOverChainMatchesFlat) {
  Rng rng(7);
  for (int t = 0; t < 20; t++) {
    size_t n = 1 + rng.Below(5000);
    std::vector<uint8_t> data(n);
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.Next());
    }
    // Build the chain from random-sized pieces.
    Chain c;
    size_t at = 0;
    while (at < n) {
      size_t take = std::min(n - at, 1 + rng.Below(700));
      c.Append(data.data() + at, take);
      at += take;
    }
    ChecksumAccumulator acc;
    c.Checksum(0, n, &acc);
    EXPECT_EQ(acc.Finish(), InternetChecksum(data.data(), n));
  }
}

// Property test: a random sequence of operations preserves equivalence with
// a flat byte-vector model.
TEST(MbufProperty, RandomOpsMatchModel) {
  Rng rng(0xfeed);
  for (int trial = 0; trial < 30; trial++) {
    Chain c;
    std::vector<uint8_t> model;
    for (int op = 0; op < 60; op++) {
      switch (rng.Below(4)) {
        case 0: {  // append
          std::vector<uint8_t> piece(1 + rng.Below(400));
          for (auto& b : piece) {
            b = static_cast<uint8_t>(rng.Next());
          }
          c.Append(piece.data(), piece.size());
          model.insert(model.end(), piece.begin(), piece.end());
          break;
        }
        case 1: {  // trim front
          size_t n = rng.Below(model.size() + 1);
          c.TrimFront(n);
          model.erase(model.begin(), model.begin() + n);
          break;
        }
        case 2: {  // trim back
          size_t n = rng.Below(model.size() + 1);
          c.TrimBack(n);
          model.resize(model.size() - n);
          break;
        }
        case 3: {  // copy range (must not disturb the original)
          if (model.empty()) {
            break;
          }
          size_t off = rng.Below(model.size());
          size_t n = rng.Below(model.size() - off + 1);
          Chain copy = c.CopyRange(off, n);
          EXPECT_EQ(copy.ToVector(),
                    std::vector<uint8_t>(model.begin() + off, model.begin() + off + n));
          break;
        }
      }
      ASSERT_TRUE(c.Invariant());
      ASSERT_EQ(c.len(), model.size());
    }
    EXPECT_EQ(c.ToVector(), model);
  }
}

}  // namespace
}  // namespace psd
