// Property test for the indexed demux fast path (ISSUE 1): two engines
// holding identical filter sets — one installed program-only ("linear"),
// one with the session compiler's FlowSpec alongside ("indexed") — must
// return identical endpoint ids for every packet, across randomized filter
// sets (mixed priorities, remote wildcards, non-indexable programs),
// randomized/adversarial packets, install/remove churn, and the
// remove-then-reinstall pattern of session migration handover.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <random>

#include "src/base/bytes.h"
#include "src/filter/session_filter.h"
#include "src/netsim/ether.h"

namespace psd {
namespace {

// Small pools so random choices collide: same local endpoint under
// different priorities, wildcard vs exact entries for one port, etc.
const Ipv4Addr kAddrs[] = {Ipv4Addr::FromOctets(10, 0, 0, 2), Ipv4Addr::FromOctets(10, 0, 0, 3),
                           Ipv4Addr::FromOctets(10, 0, 0, 9)};
const uint16_t kPorts[] = {0, 80, 5001, 7000, 7001};

class EnginePair {
 public:
  // Installs the same filter into both engines; returns the shared id.
  uint64_t InstallSession(const SessionTuple& t, int priority, bool accept_frags) {
    uint64_t a = linear_.Install(CompileSessionFilter(t, accept_frags), priority);
    uint64_t b = indexed_.Install(CompileSessionFilter(t, accept_frags), priority,
                                  SessionFlowSpec(t, accept_frags));
    EXPECT_EQ(a, b);
    return a;
  }

  uint64_t InstallVm(const FilterProgram& prog, int priority) {
    uint64_t a = linear_.Install(prog, priority);
    uint64_t b = indexed_.Install(prog, priority);
    EXPECT_EQ(a, b);
    return a;
  }

  void Remove(uint64_t id) {
    linear_.Remove(id);
    indexed_.Remove(id);
  }

  void ExpectSameMatch(const std::vector<uint8_t>& pkt, const char* what) {
    FilterEngine::MatchResult a = linear_.Match(pkt.data(), pkt.size());
    FilterEngine::MatchResult b = indexed_.Match(pkt.data(), pkt.size());
    EXPECT_EQ(a.id, b.id) << what << " (len " << pkt.size() << ")";
  }

  FilterEngine& indexed() { return indexed_; }

 private:
  FilterEngine linear_;
  FilterEngine indexed_;
};

std::vector<uint8_t> RandomFrame(std::mt19937& rng) {
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<size_t> addr_pick(0, std::size(kAddrs) - 1);
  std::uniform_int_distribution<size_t> port_pick(0, std::size(kPorts) - 1);

  // Length boundaries matter: a session program's deepest loads need 34
  // (header-only path) and 38 (port path) bytes.
  const size_t lens[] = {10, 22, 33, 34, 37, 38, 60, 1514};
  std::uniform_int_distribution<size_t> len_pick(0, std::size(lens) - 1);
  std::vector<uint8_t> f(lens[len_pick(rng)], 0);

  std::uniform_int_distribution<int> kind(0, 9);
  int k = kind(rng);
  if (k == 0) {
    // Pure garbage.
    for (uint8_t& b : f) {
      b = static_cast<uint8_t>(rng());
    }
    return f;
  }
  uint16_t ethertype = k == 1 ? kEtherTypeArp : k == 2 ? 0x86dd : kEtherTypeIpv4;
  if (f.size() >= 14) {
    Store16(f.data() + FilterOffsets::kEtherType, ethertype);
  }
  if (f.size() > FilterOffsets::kIpVerIhl) {
    f[FilterOffsets::kIpVerIhl] = coin(rng) != 0 ? 0x45 : 0x46;
  }
  if (f.size() > FilterOffsets::kIpProto) {
    const uint8_t protos[] = {6, 17, 1, 89};
    f[FilterOffsets::kIpProto] = protos[std::uniform_int_distribution<int>(0, 3)(rng)];
  }
  if (f.size() >= FilterOffsets::kIpFragField + 2) {
    // Mix unfragmented, first-fragment (MF only), and continuation.
    const uint16_t frags[] = {0, 0x2000, 0x0005, 0x1fff};
    Store16(f.data() + FilterOffsets::kIpFragField,
            frags[std::uniform_int_distribution<int>(0, 3)(rng)]);
  }
  if (f.size() >= FilterOffsets::kIpSrc + 4) {
    Store32(f.data() + FilterOffsets::kIpSrc, kAddrs[addr_pick(rng)].v);
  }
  if (f.size() >= FilterOffsets::kIpDst + 4) {
    Store32(f.data() + FilterOffsets::kIpDst, kAddrs[addr_pick(rng)].v);
  }
  if (f.size() >= FilterOffsets::kDstPort + 2) {
    Store16(f.data() + FilterOffsets::kSrcPort, kPorts[port_pick(rng)]);
    Store16(f.data() + FilterOffsets::kDstPort, kPorts[port_pick(rng)]);
  }
  return f;
}

SessionTuple RandomTuple(std::mt19937& rng) {
  std::uniform_int_distribution<size_t> addr_pick(0, std::size(kAddrs) - 1);
  std::uniform_int_distribution<size_t> port_pick(1, std::size(kPorts) - 1);
  std::uniform_int_distribution<int> wild(0, 3);
  SessionTuple t;
  t.proto = std::uniform_int_distribution<int>(0, 1)(rng) != 0 ? IpProto::kTcp : IpProto::kUdp;
  t.local = {kAddrs[addr_pick(rng)], kPorts[port_pick(rng)]};
  int w = wild(rng);  // 0: both wild, 1: addr only, 2: port only, 3: exact
  t.remote.addr = (w & 1) != 0 ? kAddrs[addr_pick(rng)] : Ipv4Addr::Any();
  t.remote.port = (w & 2) != 0 ? kPorts[port_pick(rng)] : 0;
  return t;
}

// A hand-written, non-indexable program the flow table knows nothing
// about: accepts IPv4 frames whose destination port is > 6000.
FilterProgram HighPortFilter() {
  FilterProgram p;
  p.LdH(FilterOffsets::kEtherType);
  p.JEqK(kEtherTypeIpv4, 0, 3);
  p.LdH(FilterOffsets::kDstPort);
  p.JGtK(6000, 0, 1);
  p.Accept();
  p.Reject();
  return p;
}

TEST(DemuxEquivalence, RandomizedFilterSetsAndPackets) {
  std::mt19937 rng(0x5eed1);
  std::uniform_int_distribution<int> prio(0, 20);
  std::uniform_int_distribution<int> coin(0, 1);

  for (int round = 0; round < 30; round++) {
    EnginePair pair;
    std::vector<uint64_t> live;
    int installs = std::uniform_int_distribution<int>(1, 24)(rng);
    for (int i = 0; i < installs; i++) {
      int k = std::uniform_int_distribution<int>(0, 9)(rng);
      if (k < 6) {
        live.push_back(pair.InstallSession(RandomTuple(rng), prio(rng), coin(rng) != 0));
      } else if (k == 6) {
        live.push_back(pair.InstallVm(CompileCatchAllFilter(), prio(rng)));
      } else if (k == 7) {
        live.push_back(pair.InstallVm(CompileArpFilter(), prio(rng)));
      } else if (k == 8) {
        live.push_back(pair.InstallVm(HighPortFilter(), prio(rng)));
      } else {
        // Indexable-shaped program installed WITHOUT its FlowSpec: must be
        // resolved by the VM fallback in both engines.
        live.push_back(pair.InstallVm(CompileSessionFilter(RandomTuple(rng)), prio(rng)));
      }
    }
    for (int p = 0; p < 200; p++) {
      pair.ExpectSameMatch(RandomFrame(rng), "random set");
    }
    // Churn: remove a random half, re-check, then add more.
    std::shuffle(live.begin(), live.end(), rng);
    for (size_t i = 0; i < live.size() / 2; i++) {
      pair.Remove(live[i]);
    }
    for (int p = 0; p < 100; p++) {
      pair.ExpectSameMatch(RandomFrame(rng), "after churn");
    }
  }
}

TEST(DemuxEquivalence, MigrationHandoverReinstall) {
  // Session migration removes a session's filter and immediately reinstalls
  // it (new id, possibly narrowed remote). The flow-table entry must move
  // with it: packets route to the new id, never the dead one.
  std::mt19937 rng(0x5eed2);
  EnginePair pair;
  pair.InstallVm(CompileCatchAllFilter(), 0);

  std::map<int, uint64_t> sessions;  // slot -> live id
  std::vector<SessionTuple> tuples;
  for (int i = 0; i < 8; i++) {
    SessionTuple t{IpProto::kUdp, {kAddrs[0], static_cast<uint16_t>(7000 + i)}, {}};
    tuples.push_back(t);
    sessions[i] = pair.InstallSession(t, 10, true);
  }
  for (int step = 0; step < 100; step++) {
    int slot = std::uniform_int_distribution<int>(0, 7)(rng);
    // Handover: unconnected binding narrows to a connected remote or back.
    pair.Remove(sessions[slot]);
    SessionTuple t = tuples[slot];
    if (std::uniform_int_distribution<int>(0, 1)(rng) != 0) {
      t.remote = {kAddrs[1], 1024};
    }
    sessions[slot] = pair.InstallSession(t, 10, true);

    for (int p = 0; p < 20; p++) {
      pair.ExpectSameMatch(RandomFrame(rng), "handover");
    }
    // The migrated session's own traffic lands on the fresh id.
    std::vector<uint8_t> f(60, 0);
    Store16(f.data() + FilterOffsets::kEtherType, kEtherTypeIpv4);
    f[FilterOffsets::kIpVerIhl] = 0x45;
    f[FilterOffsets::kIpProto] = static_cast<uint8_t>(IpProto::kUdp);
    Store32(f.data() + FilterOffsets::kIpSrc, kAddrs[1].v);
    Store32(f.data() + FilterOffsets::kIpDst, t.local.addr.v);
    Store16(f.data() + FilterOffsets::kSrcPort, 1024);
    Store16(f.data() + FilterOffsets::kDstPort, t.local.port);
    EXPECT_EQ(pair.indexed().Match(f.data(), f.size()).id, sessions[slot]);
    pair.ExpectSameMatch(f, "handover target");
  }
}

TEST(DemuxEquivalence, IndexedPathReportsClassification) {
  // Below two indexable filters the engine keeps the seed's pure VM scan;
  // from two up, one classification replaces the per-session program runs.
  EnginePair pair;
  SessionTuple t0{IpProto::kUdp, {kAddrs[0], 7000}, {}};
  SessionTuple t1{IpProto::kUdp, {kAddrs[0], 7001}, {}};
  std::vector<uint8_t> f(60, 0);
  Store16(f.data() + FilterOffsets::kEtherType, kEtherTypeIpv4);
  f[FilterOffsets::kIpVerIhl] = 0x45;
  f[FilterOffsets::kIpProto] = static_cast<uint8_t>(IpProto::kUdp);
  Store32(f.data() + FilterOffsets::kIpDst, kAddrs[0].v);
  Store16(f.data() + FilterOffsets::kDstPort, 7000);

  uint64_t id0 = pair.InstallSession(t0, 10, true);
  FilterEngine::MatchResult m = pair.indexed().Match(f.data(), f.size());
  EXPECT_EQ(m.id, id0);
  EXPECT_EQ(m.classify_ops, 0);
  EXPECT_FALSE(m.via_flow_table);

  pair.InstallSession(t1, 10, true);
  m = pair.indexed().Match(f.data(), f.size());
  EXPECT_EQ(m.id, id0);
  EXPECT_EQ(m.classify_ops, 1);
  EXPECT_TRUE(m.via_flow_table);
  EXPECT_EQ(m.programs_run, 0);
  EXPECT_EQ(pair.indexed().indexed_count(), 2u);
}

}  // namespace
}  // namespace psd
