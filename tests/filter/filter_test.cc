#include <gtest/gtest.h>

#include "src/base/bytes.h"
#include "src/filter/session_filter.h"
#include "src/netsim/ether.h"

namespace psd {
namespace {

// Builds an Ethernet+IPv4 frame skeleton with transport ports.
std::vector<uint8_t> MakeFrame(IpProto proto, Ipv4Addr src, Ipv4Addr dst, uint16_t sport,
                               uint16_t dport, uint16_t frag_field = 0) {
  std::vector<uint8_t> f(60, 0);
  Store16(f.data() + 12, kEtherTypeIpv4);
  f[14] = 0x45;
  Store16(f.data() + 20, frag_field);
  f[23] = static_cast<uint8_t>(proto);
  Store32(f.data() + 26, src.v);
  Store32(f.data() + 30, dst.v);
  Store16(f.data() + 34, sport);
  Store16(f.data() + 36, dport);
  return f;
}

const Ipv4Addr kLocal = Ipv4Addr::FromOctets(10, 0, 0, 2);
const Ipv4Addr kRemote = Ipv4Addr::FromOctets(10, 0, 0, 1);
const Ipv4Addr kOther = Ipv4Addr::FromOctets(10, 0, 0, 9);

TEST(SessionFilter, MatchesBoundUdp) {
  SessionTuple t{IpProto::kUdp, {kLocal, 7000}, {}};
  FilterProgram prog = CompileSessionFilter(t);
  ASSERT_TRUE(prog.Validate());

  auto hit = MakeFrame(IpProto::kUdp, kRemote, kLocal, 1234, 7000);
  EXPECT_TRUE(RunFilter(prog, hit.data(), hit.size()).accepted);

  auto wrong_port = MakeFrame(IpProto::kUdp, kRemote, kLocal, 1234, 7001);
  EXPECT_FALSE(RunFilter(prog, wrong_port.data(), wrong_port.size()).accepted);

  auto wrong_ip = MakeFrame(IpProto::kUdp, kRemote, kOther, 1234, 7000);
  EXPECT_FALSE(RunFilter(prog, wrong_ip.data(), wrong_ip.size()).accepted);

  auto wrong_proto = MakeFrame(IpProto::kTcp, kRemote, kLocal, 1234, 7000);
  EXPECT_FALSE(RunFilter(prog, wrong_proto.data(), wrong_proto.size()).accepted);
}

TEST(SessionFilter, ConnectedTupleIsExact) {
  SessionTuple t{IpProto::kTcp, {kLocal, 5001}, {kRemote, 1024}};
  FilterProgram prog = CompileSessionFilter(t);
  ASSERT_TRUE(prog.Validate());

  auto hit = MakeFrame(IpProto::kTcp, kRemote, kLocal, 1024, 5001);
  EXPECT_TRUE(RunFilter(prog, hit.data(), hit.size()).accepted);

  auto wrong_peer = MakeFrame(IpProto::kTcp, kOther, kLocal, 1024, 5001);
  EXPECT_FALSE(RunFilter(prog, wrong_peer.data(), wrong_peer.size()).accepted);

  auto wrong_sport = MakeFrame(IpProto::kTcp, kRemote, kLocal, 1025, 5001);
  EXPECT_FALSE(RunFilter(prog, wrong_sport.data(), wrong_sport.size()).accepted);
}

TEST(SessionFilter, ContinuationFragmentsAccepted) {
  SessionTuple t{IpProto::kUdp, {kLocal, 7000}, {}};
  FilterProgram prog = CompileSessionFilter(t, /*accept_fragments=*/true);
  // A continuation fragment has offset != 0 and no transport header.
  auto frag = MakeFrame(IpProto::kUdp, kRemote, kLocal, 0, 0, /*frag_field=*/0x0005);
  EXPECT_TRUE(RunFilter(prog, frag.data(), frag.size()).accepted);

  FilterProgram strict = CompileSessionFilter(t, /*accept_fragments=*/false);
  EXPECT_FALSE(RunFilter(strict, frag.data(), frag.size()).accepted);
}

TEST(SessionFilter, RejectsArp) {
  SessionTuple t{IpProto::kUdp, {kLocal, 7000}, {}};
  FilterProgram prog = CompileSessionFilter(t);
  std::vector<uint8_t> arp(60, 0);
  Store16(arp.data() + 12, kEtherTypeArp);
  EXPECT_FALSE(RunFilter(prog, arp.data(), arp.size()).accepted);
}

TEST(CatchAll, AcceptsIpAndArp) {
  FilterProgram prog = CompileCatchAllFilter();
  ASSERT_TRUE(prog.Validate());
  auto ip = MakeFrame(IpProto::kUdp, kRemote, kLocal, 1, 2);
  EXPECT_TRUE(RunFilter(prog, ip.data(), ip.size()).accepted);
  std::vector<uint8_t> arp(60, 0);
  Store16(arp.data() + 12, kEtherTypeArp);
  EXPECT_TRUE(RunFilter(prog, arp.data(), arp.size()).accepted);
  std::vector<uint8_t> other(60, 0);
  Store16(other.data() + 12, 0x86dd);  // IPv6: not ours
  EXPECT_FALSE(RunFilter(prog, other.data(), other.size()).accepted);
}

TEST(FilterVm, OutOfRangeLoadRejects) {
  FilterProgram p;
  p.LdW(100);  // beyond a 60-byte packet
  p.Accept();
  std::vector<uint8_t> pkt(60, 0);
  EXPECT_FALSE(RunFilter(p, pkt.data(), pkt.size()).accepted);
}

TEST(FilterVm, HugeOffsetsDoNotWrapBoundsCheck) {
  // Regression: the bounds checks used to compute `k + width` in uint32_t,
  // so k near UINT32_MAX wrapped past the check and read out of bounds.
  std::vector<uint8_t> pkt(60, 0);
  for (uint32_t k : {0xFFFFFFFFu, 0xFFFFFFFEu, 0xFFFFFFFCu}) {
    FilterProgram b;
    b.LdB(k);
    b.Accept();
    EXPECT_FALSE(RunFilter(b, pkt.data(), pkt.size()).accepted) << "ldb k=" << k;
    FilterProgram h;
    h.LdH(k);
    h.Accept();
    EXPECT_FALSE(RunFilter(h, pkt.data(), pkt.size()).accepted) << "ldh k=" << k;
    FilterProgram w;
    w.LdW(k);
    w.Accept();
    EXPECT_FALSE(RunFilter(w, pkt.data(), pkt.size()).accepted) << "ldw k=" << k;
  }
  // Zero-length packets reject every load, including at offset 0.
  FilterProgram z;
  z.LdB(0);
  z.Accept();
  EXPECT_FALSE(RunFilter(z, pkt.data(), 0).accepted);
}

TEST(FilterVm, ValidationRejectsOversizedLoadOffsets) {
  FilterProgram p;
  p.LdW(kMaxFilterLoadOffset + 1);
  p.Accept();
  EXPECT_FALSE(p.Validate());

  FilterProgram q;
  q.LdB(0xFFFFFFFF);
  q.Accept();
  EXPECT_FALSE(q.Validate());

  FilterProgram ok;
  ok.LdB(kMaxFilterLoadOffset);
  ok.Accept();
  EXPECT_TRUE(ok.Validate());
}

TEST(FilterVm, ValidationRejectsBadJumps) {
  FilterProgram p;
  p.LdB(0);
  p.JEqK(1, 200, 200);  // jumps far out of range
  p.Accept();
  EXPECT_FALSE(p.Validate());

  FilterProgram q;
  q.LdB(0);  // last insn is not a return
  EXPECT_FALSE(q.Validate());

  FilterProgram empty;
  EXPECT_FALSE(empty.Validate());
}

TEST(FilterVm, ArithmeticAndJgt) {
  // Accept when (pkt[0] & 0x0f) > 3.
  FilterProgram p;
  p.LdB(0);
  p.AndK(0x0f);
  p.JGtK(3, 0, 1);
  p.Accept();
  p.Reject();
  ASSERT_TRUE(p.Validate());
  uint8_t big[1] = {0x3f};  // & 0x0f = 15 > 3
  EXPECT_TRUE(RunFilter(p, big, 1).accepted);
  uint8_t small[1] = {0x02};
  EXPECT_FALSE(RunFilter(p, small, 1).accepted);
}

TEST(FilterEngine, PriorityAndFirstMatch) {
  FilterEngine engine;
  SessionTuple t{IpProto::kUdp, {kLocal, 7000}, {}};
  uint64_t session = engine.Install(CompileSessionFilter(t), /*priority=*/10);
  uint64_t catchall = engine.Install(CompileCatchAllFilter(), /*priority=*/0);
  ASSERT_NE(session, 0u);
  ASSERT_NE(catchall, 0u);

  auto hit = MakeFrame(IpProto::kUdp, kRemote, kLocal, 1, 7000);
  EXPECT_EQ(engine.Match(hit.data(), hit.size()).id, session);

  auto miss = MakeFrame(IpProto::kUdp, kRemote, kLocal, 1, 9);
  EXPECT_EQ(engine.Match(miss.data(), miss.size()).id, catchall);

  engine.Remove(session);
  EXPECT_EQ(engine.Match(hit.data(), hit.size()).id, catchall);
}

TEST(FilterEngine, NoMatchReturnsZero) {
  FilterEngine engine;
  auto pkt = MakeFrame(IpProto::kUdp, kRemote, kLocal, 1, 2);
  EXPECT_EQ(engine.Match(pkt.data(), pkt.size()).id, 0u);
}

TEST(FilterProgram, DisassembleIsNonEmpty) {
  SessionTuple t{IpProto::kTcp, {kLocal, 80}, {kRemote, 1024}};
  FilterProgram prog = CompileSessionFilter(t);
  EXPECT_NE(prog.Disassemble().find("jeq"), std::string::npos);
}

}  // namespace
}  // namespace psd
