// Session migration under traffic, fork semantics, and the cooperative
// select (§3.2) in the library placement.
#include <gtest/gtest.h>

#include "src/testbed/world.h"

namespace psd {
namespace {

TEST(Migration, StateRoundTripsThroughEncoding) {
  TcpMigrationState st;
  st.local = {Ipv4Addr::FromOctets(10, 0, 0, 1), 5001};
  st.remote = {Ipv4Addr::FromOctets(10, 0, 0, 2), 1024};
  st.state = TcpState::kEstablished;
  st.iss = 1000;
  st.snd_una = 1200;
  st.snd_nxt = 1300;
  st.snd_max = 1300;
  st.snd_wnd = 8192;
  st.rcv_nxt = 99887;
  st.rcv_wnd = 4096;
  st.t_maxseg = 1460;
  st.nodelay = true;
  st.sent_fin = false;
  st.snd_data = {1, 2, 3, 4, 5};
  st.rcv_data = {9, 8};
  st.reasm.emplace_back(100000u, std::vector<uint8_t>{7, 7, 7});

  std::vector<uint8_t> bytes = st.Encode();
  Result<TcpMigrationState> back = TcpMigrationState::Decode(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->local, st.local);
  EXPECT_EQ(back->remote, st.remote);
  EXPECT_EQ(back->state, TcpState::kEstablished);
  EXPECT_EQ(back->snd_una, 1200u);
  EXPECT_EQ(back->rcv_nxt, 99887u);
  EXPECT_EQ(back->t_maxseg, 1460);
  EXPECT_TRUE(back->nodelay);
  EXPECT_EQ(back->snd_data, st.snd_data);
  EXPECT_EQ(back->rcv_data, st.rcv_data);
  ASSERT_EQ(back->reasm.size(), 1u);
  EXPECT_EQ(back->reasm[0].first, 100000u);
}

TEST(Migration, DecodeRejectsCorruptBytes) {
  std::vector<uint8_t> junk = {1, 2, 3};
  EXPECT_FALSE(TcpMigrationState::Decode(junk).ok());
  TcpMigrationState st;
  std::vector<uint8_t> bytes = st.Encode();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(TcpMigrationState::Decode(bytes).ok());
}

// A transfer continues correctly across a mid-stream migration: the client
// returns the session to the server (fork preparation) in the middle of a
// transfer, then keeps sending through the server.
TEST(Migration, MidStreamReturnPreservesByteStream) {
  World w(Config::kLibraryShmIpf, MachineProfile::DecStation5000());
  constexpr size_t kTotal = 60 * 1024;
  bool ok = false;

  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 1);
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    size_t got = 0;
    bool content_ok = true;
    uint8_t buf[2048];
    for (;;) {
      Result<size_t> n = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
      if (!n.ok() || *n == 0) {
        break;
      }
      for (size_t i = 0; i < *n; i++) {
        content_ok &= buf[i] == static_cast<uint8_t>((got + i) % 249);
      }
      got += *n;
    }
    ok = content_ok && got == kTotal;
  });

  w.SpawnApp(0, "tx", [&] {
    LibraryNode* node = w.library_node(0);
    w.sim().current_thread()->SleepFor(Millis(10));
    int fd = *node->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(node->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
    std::vector<uint8_t> data(kTotal);
    for (size_t i = 0; i < kTotal; i++) {
      data[i] = static_cast<uint8_t>(i % 249);
    }
    size_t sent = 0;
    bool returned = false;
    while (sent < kTotal) {
      size_t chunk = std::min<size_t>(4096, kTotal - sent);
      Result<size_t> n = node->Send(fd, data.data() + sent, chunk, nullptr);
      ASSERT_TRUE(n.ok()) << ErrName(n.error());
      sent += *n;
      if (!returned && sent >= kTotal / 2) {
        // Mid-stream: hand the session (with unacknowledged data) back to
        // the OS server, as fork would.
        ASSERT_TRUE(node->PrepareFork().ok());
        EXPECT_FALSE(node->IsAppManaged(fd));
        returned = true;
      }
    }
    node->Close(fd);
    EXPECT_TRUE(returned);
  });

  w.sim().Run(Seconds(120));
  EXPECT_TRUE(ok);
  EXPECT_EQ(w.net_server(0)->migrations_in(), 1u);
}

TEST(CooperativeSelect, AllAppManagedNeedsNoServer) {
  World w(Config::kLibraryShmIpf, MachineProfile::DecStation5000());
  bool checked = false;
  w.SpawnApp(0, "app", [&] {
    LibraryNode* node = w.library_node(0);
    int fd = *node->CreateSocket(IpProto::kUdp);
    ASSERT_TRUE(node->Bind(fd, SockAddrIn{Ipv4Addr::Any(), 8000}).ok());
    uint64_t before = w.net_server(0)->control_port()->messages_sent();
    SelectFds fds;
    fds.read.push_back(fd);
    Result<int> n = node->Select(&fds, Millis(20));  // times out: no data
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 0);
    // "In cases where all descriptors are managed by the application, the
    // operating system is not involved" (§3.2).
    EXPECT_EQ(w.net_server(0)->control_port()->messages_sent(), before);
    checked = true;
  });
  w.sim().Run(Seconds(5));
  EXPECT_TRUE(checked);
}

TEST(CooperativeSelect, MixedSetWakesOnAppManagedReadiness) {
  World w(Config::kLibraryShmIpf, MachineProfile::DecStation5000());
  bool checked = false;

  w.SpawnApp(0, "selector", [&] {
    LibraryNode* node = w.library_node(0);
    // One app-managed UDP socket and one server-managed TCP listener.
    int ufd = *node->CreateSocket(IpProto::kUdp);
    ASSERT_TRUE(node->Bind(ufd, SockAddrIn{Ipv4Addr::Any(), 8000}).ok());
    int lfd = *node->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(node->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001}).ok());
    ASSERT_TRUE(node->Listen(lfd, 2).ok());

    SelectFds fds;
    fds.read.push_back(ufd);
    fds.read.push_back(lfd);
    SimTime t0 = w.sim().Now();
    Result<int> n = node->Select(&fds, Seconds(20));
    ASSERT_TRUE(n.ok());
    EXPECT_GE(*n, 1);
    EXPECT_TRUE(fds.read_ready[0]);   // the UDP datagram below
    EXPECT_FALSE(fds.read_ready[1]);  // nobody connected
    EXPECT_LT(w.sim().Now() - t0, Seconds(5));  // woke on data, not timeout
    checked = true;
  });
  w.SpawnApp(1, "pinger", [&] {
    SocketApi* api = w.api(1);
    int fd = *api->CreateSocket(IpProto::kUdp);
    w.sim().current_thread()->SleepFor(Millis(200));
    uint8_t b[4] = {};
    SockAddrIn dst{w.addr(0), 8000};
    api->Send(fd, b, sizeof(b), &dst);
  });
  w.sim().Run(Seconds(30));
  EXPECT_TRUE(checked);
}

TEST(CooperativeSelect, MixedSetWakesOnServerManagedReadiness) {
  World w(Config::kLibraryShmIpf, MachineProfile::DecStation5000());
  bool checked = false;

  w.SpawnApp(1, "selector", [&] {
    LibraryNode* node = w.library_node(1);
    int ufd = *node->CreateSocket(IpProto::kUdp);
    ASSERT_TRUE(node->Bind(ufd, SockAddrIn{Ipv4Addr::Any(), 8000}).ok());
    int lfd = *node->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(node->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001}).ok());
    ASSERT_TRUE(node->Listen(lfd, 2).ok());

    SelectFds fds;
    fds.read.push_back(ufd);
    fds.read.push_back(lfd);
    Result<int> n = node->Select(&fds, Seconds(20));
    ASSERT_TRUE(n.ok());
    EXPECT_GE(*n, 1);
    EXPECT_TRUE(fds.read_ready[1]) << "listener must be acceptable";
    Result<int> cfd = node->Accept(lfd, nullptr);
    EXPECT_TRUE(cfd.ok());
    checked = true;
  });
  w.SpawnApp(0, "connector", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(200));
    api->Connect(fd, SockAddrIn{w.addr(1), 5001});
  });
  w.sim().Run(Seconds(30));
  EXPECT_TRUE(checked);
}

TEST(Fork, ChildAndParentShareStreamThroughServer) {
  World w(Config::kLibraryShmIpf, MachineProfile::DecStation5000());
  std::unique_ptr<LibraryNode> child_holder;
  std::string child_got, parent_got;

  w.SpawnApp(1, "server", [&] {
    LibraryNode* parent = w.library_node(1);
    int lfd = *parent->CreateSocket(IpProto::kTcp);
    parent->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    parent->Listen(lfd, 2);
    Result<int> cfd = parent->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());

    ProtocolLibrary* child_lib = w.AddLibrary(1, "h1/child");
    Result<std::unique_ptr<LibraryNode>> forked = parent->Fork(child_lib);
    ASSERT_TRUE(forked.ok());
    child_holder = std::move(*forked);
    LibraryNode* child = child_holder.get();

    // Child reads the first message, parent the second: both see the same
    // descriptor referring to the same stream.
    w.SpawnApp(1, "child", [&, child, cfd = *cfd] {
      uint8_t buf[64];
      Result<size_t> n = child->Recv(cfd, buf, 6, nullptr, false);
      if (n.ok()) {
        child_got.assign(buf, buf + *n);
      }
      child->Close(cfd);
    });
    uint8_t buf[64];
    w.sim().current_thread()->SleepFor(Millis(300));
    Result<size_t> n = parent->Recv(*cfd, buf, 6, nullptr, false);
    if (n.ok()) {
      parent_got.assign(buf, buf + *n);
    }
    parent->Close(*cfd);
    parent->Close(lfd);
  });
  w.SpawnApp(0, "client", [&] {
    SocketApi* api = w.api(0);
    w.sim().current_thread()->SleepFor(Millis(10));
    int fd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
    w.sim().current_thread()->SleepFor(Millis(200));
    const char* msg = "first.second";
    api->Send(fd, reinterpret_cast<const uint8_t*>(msg), 12, nullptr);
    w.sim().current_thread()->SleepFor(Seconds(2));
    api->Close(fd);
  });
  w.sim().Run(Seconds(30));
  EXPECT_EQ(child_got, "first.");
  EXPECT_EQ(parent_got, "second");
}

}  // namespace
}  // namespace psd
