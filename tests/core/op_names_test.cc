// Name-table completeness for the two RPC op spaces the observatory
// renders: every ServOp (UX server placement) and every ProxyOp (library
// placements) must map to a unique, prefixed display name, and the dense
// slot mapping used by the RPC recorders must round-trip.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>

#include "src/core/proxy_protocol.h"
#include "src/serv/ux_server.h"

namespace psd {
namespace {

TEST(ServOpNames, EveryOpHasAUniquePrefixedName) {
  std::set<std::string> seen;
  for (uint32_t k = kServOpFirst; k < kServOpFirst + kNumServOps; k++) {
    const char* name = ServOpName(static_cast<ServOp>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(std::strncmp(name, "ux/", 3), 0) << name;
    EXPECT_STRNE(name, "ux/?") << "op " << k << " has no real name";
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(seen.size(), kNumServOps);
}

TEST(ServOpNames, OutOfRangeOpsRenderAsPlaceholder) {
  EXPECT_STREQ(ServOpName(static_cast<ServOp>(0)), "ux/?");
  EXPECT_STREQ(ServOpName(ServOp::kServOpCount), "ux/?");
  EXPECT_STREQ(ServOpName(static_cast<ServOp>(9999)), "ux/?");
}

TEST(ServOpNames, SlotMappingIsDenseAndRejectsNonOps) {
  for (uint32_t k = kServOpFirst; k < kServOpFirst + kNumServOps; k++) {
    int slot = ServOpSlot(k);
    EXPECT_EQ(slot, static_cast<int>(k - kServOpFirst));
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, static_cast<int>(kNumServOps));
  }
  EXPECT_EQ(ServOpSlot(0), -1);
  EXPECT_EQ(ServOpSlot(static_cast<uint32_t>(ServOp::kServOpCount)), -1);
}

TEST(ProxyOpNames, EveryTableAndFwdOpHasAUniquePrefixedName) {
  std::set<std::string> seen;
  for (int slot = 0; slot < kNumProxyOpSlots; slot++) {
    ProxyOp op = ProxyOpFromSlot(slot);
    const char* name = ProxyOpName(op);
    ASSERT_NE(name, nullptr);
    EXPECT_EQ(std::strncmp(name, "proxy/", 6), 0) << name;
    EXPECT_STRNE(name, "proxy/?") << "slot " << slot << " has no real name";
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(kNumProxyOpSlots));
}

TEST(ProxyOpNames, SlotMappingRoundTripsBothBlocks) {
  // Table block (100..) and forwarded block (200..) collapse into one dense
  // slot space for the recorders; the inverse must reproduce the op.
  for (int slot = 0; slot < kNumProxyOpSlots; slot++) {
    ProxyOp op = ProxyOpFromSlot(slot);
    EXPECT_EQ(ProxyOpSlot(static_cast<uint32_t>(op)), slot);
  }
  EXPECT_EQ(ProxyOpSlot(static_cast<uint32_t>(ProxyOp::kProxyReacquire)),
            static_cast<int>(static_cast<uint32_t>(ProxyOp::kProxyReacquire) - kProxyTableBase));
  // Sentinels and gaps are not ops.
  EXPECT_EQ(ProxyOpSlot(0), -1);
  EXPECT_EQ(ProxyOpSlot(kProxyTableBase + static_cast<uint32_t>(kProxyTableSlots)), -1);
  EXPECT_EQ(ProxyOpSlot(kProxyFwdBase + static_cast<uint32_t>(kProxyFwdSlots)), -1);
  EXPECT_EQ(ProxyOpSlot(150), -1);
}

}  // namespace
}  // namespace psd
