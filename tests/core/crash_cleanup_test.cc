// Crash-cleanup hardening (§3.2: "The operating system ... can detect the
// death of processes ... abort outstanding connections by sending reset
// messages"): the suppression-set key must cover the full 4-tuple, and
// peers of a crashed application must observe a reset even when the wire
// is lossy.
#include <gtest/gtest.h>

#include "src/testbed/world.h"

namespace psd {
namespace {

TEST(NetServerTupleKey, DistinguishesSessionsDifferingOnlyInLocalAddr) {
  // Regression: the old key packed (local.port, remote.port, remote.addr)
  // into 64 bits and dropped local.addr, so two sessions that differed only
  // in their local address collided — one session's handover could erase
  // the other's RST suppression.
  SockAddrIn local_a{Ipv4Addr{0x0a000001}, 7000};
  SockAddrIn local_b{Ipv4Addr{0x0a000002}, 7000};
  SockAddrIn remote{Ipv4Addr{0x0a0000ff}, 9000};
  EXPECT_NE(NetServer::TupleKey(local_a, remote), NetServer::TupleKey(local_b, remote));
  EXPECT_EQ(NetServer::TupleKey(local_a, remote), NetServer::TupleKey(local_a, remote));
  // The remaining fields still participate.
  SockAddrIn remote2{Ipv4Addr{0x0a0000ff}, 9001};
  EXPECT_NE(NetServer::TupleKey(local_a, remote), NetServer::TupleKey(local_a, remote2));
}

TEST(CrashCleanup, PeerSeesResetDespiteWireLoss) {
  World w(Config::kLibraryShmIpf, MachineProfile::DecStation5000());
  bool peer_reset = false;
  bool accepted = false;

  w.SpawnApp(1, "peer", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 2);
    Result<int> cfd = api->Accept(lfd, nullptr);
    if (!cfd.ok()) {
      return;
    }
    accepted = true;
    // Keep talking to the (soon-dead) client: every send the crashed side
    // cannot ack is retransmitted until the server's reset gets through.
    uint8_t buf[16] = {};
    for (int i = 0; i < 600; i++) {
      Result<size_t> n = api->Send(*cfd, buf, sizeof(buf), nullptr);
      if (!n.ok()) {
        peer_reset = n.error() == Err::kConnReset || n.error() == Err::kConnAborted;
        break;
      }
      w.sim().current_thread()->SleepFor(Millis(100));
    }
    api->Close(*cfd);
    api->Close(lfd);
  });

  w.SpawnApp(0, "doomed", [&] {
    LibraryNode* node = w.library_node(0);
    w.sim().current_thread()->SleepFor(Millis(10));
    int fd = *node->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(node->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
    // Dies without closing anything.
  });

  w.sim().RunFor(Seconds(1));
  ASSERT_TRUE(accepted);

  // Lossy wire from here on: the server's best-effort RST may be dropped,
  // but the peer's retransmissions keep hitting the (now pcb-less) server
  // stack, which must answer them with RST — possible only because crash
  // cleanup also removed the session's RST-suppression entry.
  FaultPlan faults;
  faults.loss_rate = 0.3;
  faults.seed = 7;
  w.wire().SetFaults(faults);

  w.library(0)->SimulateCrash();
  w.sim().RunFor(Seconds(120));

  EXPECT_TRUE(peer_reset) << "peer never observed the reset";
  EXPECT_EQ(w.net_server(0)->session_count(), 0u);
  EXPECT_EQ(w.net_server(0)->suppressed_count(), 0u);
}

}  // namespace
}  // namespace psd
