// Table 1 conformance: each socket call maps to the documented proxy
// behaviour, including the migration points ("UDP sessions migrate to the
// application [on bind]", "UDP and TCP sessions migrate [on connect]",
// "Migrate passively opened session ... when connection is established
// [accept]", "Return session to operating system [fork]").
#include <gtest/gtest.h>

#include "src/testbed/world.h"

namespace psd {
namespace {

class ProxyTest : public ::testing::Test {
 protected:
  ProxyTest() : w(Config::kLibraryShmIpf, MachineProfile::DecStation5000()) {}
  World w;
};

TEST_F(ProxyTest, SocketCreatesServerManagedSession) {
  bool checked = false;
  w.SpawnApp(0, "app", [&] {
    LibraryNode* node = w.library_node(0);
    int fd = *node->CreateSocket(IpProto::kUdp);
    // Before bind, the session lives in the OS server.
    EXPECT_FALSE(node->IsAppManaged(fd));
    EXPECT_EQ(w.net_server(0)->session_count(), 1u);
    checked = true;
  });
  w.sim().Run(Seconds(5));
  EXPECT_TRUE(checked);
}

TEST_F(ProxyTest, BindMigratesUdpSessionToApplication) {
  bool checked = false;
  w.SpawnApp(0, "app", [&] {
    LibraryNode* node = w.library_node(0);
    int fd = *node->CreateSocket(IpProto::kUdp);
    ASSERT_TRUE(node->Bind(fd, SockAddrIn{Ipv4Addr::Any(), 8000}).ok());
    EXPECT_TRUE(node->IsAppManaged(fd));
    EXPECT_EQ(w.net_server(0)->migrations_out(), 1u);
    // The local protocol library now owns a UDP pcb for the endpoint.
    EXPECT_EQ(w.library(0)->stack()->udp().pcbs().size(), 1u);
    EXPECT_EQ(node->LocalAddr(fd).port, 8000);
    checked = true;
  });
  w.sim().Run(Seconds(5));
  EXPECT_TRUE(checked);
}

TEST_F(ProxyTest, BindDoesNotMigrateTcp) {
  bool checked = false;
  w.SpawnApp(0, "app", [&] {
    LibraryNode* node = w.library_node(0);
    int fd = *node->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(node->Bind(fd, SockAddrIn{Ipv4Addr::Any(), 8000}).ok());
    // TCP stays with the server until the connection is established.
    EXPECT_FALSE(node->IsAppManaged(fd));
    EXPECT_EQ(w.net_server(0)->migrations_out(), 0u);
    checked = true;
  });
  w.sim().Run(Seconds(5));
  EXPECT_TRUE(checked);
}

TEST_F(ProxyTest, ConnectEstablishesAtServerThenMigrates) {
  bool checked = false;
  w.SpawnApp(1, "listener", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 2);
    api->Accept(lfd, nullptr);
  });
  w.SpawnApp(0, "app", [&] {
    LibraryNode* node = w.library_node(0);
    w.sim().current_thread()->SleepFor(Millis(10));
    int fd = *node->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(node->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
    EXPECT_TRUE(node->IsAppManaged(fd));
    // The migrated pcb is ESTABLISHED inside the library stack.
    ASSERT_EQ(w.library(0)->stack()->tcp().pcbs().size(), 1u);
    EXPECT_EQ(w.library(0)->stack()->tcp().pcbs()[0]->state, TcpState::kEstablished);
    // Port namespace lives in the server (library allocator untouched).
    EXPECT_EQ(w.library(0)->stack()->ports().count(), 0u);
    checked = true;
  });
  w.sim().Run(Seconds(10));
  EXPECT_TRUE(checked);
}

TEST_F(ProxyTest, AcceptMigratesChildNotListener) {
  bool checked = false;
  w.SpawnApp(1, "listener", [&] {
    LibraryNode* node = w.library_node(1);
    int lfd = *node->CreateSocket(IpProto::kTcp);
    node->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    node->Listen(lfd, 2);
    Result<int> cfd = node->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    EXPECT_TRUE(node->IsAppManaged(*cfd));
    EXPECT_FALSE(node->IsAppManaged(lfd));  // listener stays at the server
    checked = true;
  });
  w.SpawnApp(0, "client", [&] {
    SocketApi* api = w.api(0);
    w.sim().current_thread()->SleepFor(Millis(10));
    int fd = *api->CreateSocket(IpProto::kTcp);
    api->Connect(fd, SockAddrIn{w.addr(1), 5001});
  });
  w.sim().Run(Seconds(10));
  EXPECT_TRUE(checked);
}

TEST_F(ProxyTest, DataTransferBypassesServerEntirely) {
  uint64_t control_msgs_before = 0;
  bool checked = false;
  w.SpawnApp(1, "echo", [&] {
    SocketApi* api = w.api(1);
    int fd = *api->CreateSocket(IpProto::kUdp);
    api->Bind(fd, SockAddrIn{Ipv4Addr::Any(), 8000});
    uint8_t buf[64];
    SockAddrIn from;
    for (int i = 0; i < 10; i++) {
      Result<size_t> n = api->Recv(fd, buf, sizeof(buf), &from, false);
      if (n.ok()) {
        api->Send(fd, buf, *n, &from);
      }
    }
  });
  w.SpawnApp(0, "client", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kUdp);
    ASSERT_TRUE(api->Bind(fd, SockAddrIn{Ipv4Addr::Any(), 0}).ok());
    w.sim().current_thread()->SleepFor(Millis(10));
    SockAddrIn dst{w.addr(1), 8000};
    uint8_t b[32] = {};
    // One round trip to warm ARP/route caches (these do consult the server).
    api->Send(fd, b, sizeof(b), &dst);
    api->Recv(fd, b, sizeof(b), nullptr, false);
    control_msgs_before = w.net_server(0)->control_port()->messages_sent();
    for (int i = 0; i < 9; i++) {
      api->Send(fd, b, sizeof(b), &dst);
      api->Recv(fd, b, sizeof(b), nullptr, false);
    }
    // "Transfer data to or from the network. The operating system is not
    // involved" (Table 1): zero control messages during data transfer.
    EXPECT_EQ(w.net_server(0)->control_port()->messages_sent(), control_msgs_before);
    checked = true;
  });
  w.sim().Run(Seconds(10));
  EXPECT_TRUE(checked);
}

TEST_F(ProxyTest, CloseReturnsSessionAndServerRunsShutdown) {
  bool closed = false;
  w.SpawnApp(1, "listener", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 2);
    Result<int> cfd = api->Accept(lfd, nullptr);
    if (cfd.ok()) {
      uint8_t buf[16];
      api->Recv(*cfd, buf, sizeof(buf), nullptr, false);  // until EOF
      api->Close(*cfd);
    }
  });
  w.SpawnApp(0, "client", [&] {
    LibraryNode* node = w.library_node(0);
    w.sim().current_thread()->SleepFor(Millis(10));
    int fd = *node->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(node->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
    ASSERT_TRUE(node->Close(fd).ok());
    closed = true;
  });
  w.sim().Run(Seconds(10));
  EXPECT_TRUE(closed);
  // The session returned to the server for the shutdown handshake; its
  // library stack no longer holds the pcb.
  EXPECT_EQ(w.net_server(0)->migrations_in(), 1u);
  EXPECT_TRUE(w.library(0)->stack()->tcp().pcbs().empty());
  // Give the FIN handshake time to finish at the server side.
  w.sim().Run(w.sim().Now() + Seconds(5));
  uint64_t established = w.net_server(0)->stack()->tcp().stats().conns_established;
  (void)established;  // adopted sessions do not re-establish; just sanity:
  EXPECT_EQ(w.library(0)->stack()->tcp().stats().rsts_sent, 0u);
}

TEST_F(ProxyTest, CrashCleanupRemovesFiltersAndSessions) {
  w.SpawnApp(1, "listener", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 2);
    api->Accept(lfd, nullptr);
  });
  w.SpawnApp(0, "doomed", [&] {
    LibraryNode* node = w.library_node(0);
    w.sim().current_thread()->SleepFor(Millis(10));
    int fd = *node->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(node->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
    // ... and the process dies without closing anything.
  });
  w.sim().RunFor(Seconds(2));
  ASSERT_EQ(w.net_server(0)->session_count(), 1u);
  w.library(0)->SimulateCrash();
  w.sim().RunFor(Seconds(2));
  // "The operating system ... can detect the death of processes ... abort
  // outstanding connections by sending reset messages" (3.2).
  EXPECT_EQ(w.net_server(0)->session_count(), 0u);
  EXPECT_GE(w.net_server(0)->stack()->tcp().stats().rsts_sent, 1u);
  // Suppression entries must not outlive their sessions: a leaked entry
  // would make the server stack silently eat the peer's retransmits
  // forever instead of answering them with RST.
  EXPECT_EQ(w.net_server(0)->suppressed_count(), 0u);
}

TEST_F(ProxyTest, MetastateInvalidationReachesCaches) {
  bool checked = false;
  w.SpawnApp(0, "app", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kUdp);
    SockAddrIn dst{w.addr(1), 9000};
    uint8_t b[4] = {};
    api->Send(fd, b, sizeof(b), &dst);  // populates route + ARP caches
    EXPECT_EQ(w.library(0)->arp_cache_misses(), 1u);
    // Simulate the peer's MAC changing (host replaced): the server fires
    // invalidation callbacks into every registered cache (3.3) and the
    // next send re-fetches.
    {
      DomainLock lock(w.net_server(0)->stack()->sync());
      w.net_server(0)->stack()->arp()->AddStatic(w.addr(1), MacAddr::FromHostId(99));
    }
    w.sim().current_thread()->SleepFor(Millis(10));
    EXPECT_GE(w.net_server(0)->arp_callbacks_sent(), 1u);
    EXPECT_GE(w.library(0)->invalidations(), 1u);
    api->Send(fd, b, sizeof(b), &dst);
    EXPECT_EQ(w.library(0)->arp_cache_misses(), 2u) << "cache must refill after invalidation";
    checked = true;
  });
  w.sim().Run(Seconds(5));
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace psd
