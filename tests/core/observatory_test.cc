// Observatory end-to-end tests: the live-migration round trip
// (ReturnToServer + Reacquire) must preserve the byte stream while the
// metastate ledger records every handover phase, and the client-side RPC
// counters must reconcile with the server-side per-op recorders.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/obs/metastate.h"
#include "src/testbed/world.h"

namespace psd {
namespace {

// A session that is handed back to the OS server mid-transfer and then
// live-reacquired keeps its byte stream intact; the ledger sees the second
// server->app migration's phases and the client counts the reacquire RPC.
TEST(Observatory, LiveMigrationRoundTripPreservesByteStream) {
  MetastateLedger::Get().Reset();
  World w(Config::kLibraryShm, MachineProfile::DecStation5000());
  constexpr size_t kTotal = 48 * 1024;
  bool rx_ok = false;

  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 5001});
    api->Listen(lfd, 1);
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    size_t got = 0;
    bool content_ok = true;
    uint8_t buf[2048];
    for (;;) {
      Result<size_t> n = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
      if (!n.ok() || *n == 0) {
        break;
      }
      for (size_t i = 0; i < *n; i++) {
        content_ok &= buf[i] == static_cast<uint8_t>((got + i) % 251);
      }
      got += *n;
    }
    rx_ok = content_ok && got == kTotal;
  });

  w.SpawnApp(0, "tx", [&] {
    LibraryNode* node = w.library_node(0);
    w.sim().current_thread()->SleepFor(Millis(10));
    int fd = *node->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(node->Connect(fd, SockAddrIn{w.addr(1), 5001}).ok());
    EXPECT_TRUE(node->IsAppManaged(fd));
    std::vector<uint8_t> data(kTotal);
    for (size_t i = 0; i < kTotal; i++) {
      data[i] = static_cast<uint8_t>(i % 251);
    }
    size_t sent = 0;
    bool migrated = false;
    while (sent < kTotal) {
      size_t chunk = std::min<size_t>(4096, kTotal - sent);
      Result<size_t> n = node->Send(fd, data.data() + sent, chunk, nullptr);
      ASSERT_TRUE(n.ok()) << ErrName(n.error());
      sent += *n;
      if (!migrated && sent >= kTotal / 2) {
        // The live-migration round trip bench_c10k --migrate performs:
        // hand the established session (with unacknowledged data) back to
        // the server, then immediately reacquire it.
        ASSERT_TRUE(node->ReturnToServer(fd).ok());
        EXPECT_FALSE(node->IsAppManaged(fd));
        ASSERT_TRUE(node->Reacquire(fd).ok());
        EXPECT_TRUE(node->IsAppManaged(fd));
        migrated = true;
      }
    }
    node->Close(fd);
    EXPECT_TRUE(migrated);
  });

  w.sim().Run(Seconds(120));
  EXPECT_TRUE(rx_ok) << "migrated connection lost or corrupted data";

  // Connect migrated the session out once, the round trip moved it in and
  // back out again, and the clean close handed it back a second time
  // (Table 1: return session to the operating system).
  EXPECT_EQ(w.net_server(0)->migrations_out(), 2u);
  EXPECT_EQ(w.net_server(0)->migrations_in(), 2u);

  // Process-wide: host 0's connect adopt + reacquire adopt and host 1's
  // accept adopt leave a server (3 outs); host 0's mid-stream return and
  // close-time return re-adopt (2 ins).
  MetastateLedger& meta = MetastateLedger::Get();
  EXPECT_EQ(meta.total(MetaEvent::kMigrationOut), 3u);
  EXPECT_EQ(meta.total(MetaEvent::kMigrationIn), 2u);
  // Both server->app migrations (connect adopt, reacquire adopt) ran the
  // full phase pipeline; the client-observed transfer/resume legs fire on
  // the same two adoptions.
  EXPECT_EQ(w.net_server(0)->MergedRpcStats()
                .op(static_cast<size_t>(
                    ProxyOpSlot(static_cast<uint32_t>(ProxyOp::kProxyReacquire))))
                .count,
            1u);
  EXPECT_GE(meta.phase(MigrationPhase::kFreeze).count(), 2u);
  EXPECT_GE(meta.phase(MigrationPhase::kEncode).count(), 2u);
  EXPECT_GE(meta.phase(MigrationPhase::kInstall).count(), 2u);
  EXPECT_GE(meta.phase(MigrationPhase::kTransfer).count(), 2u);
  EXPECT_GE(meta.phase(MigrationPhase::kResume).count(), 2u);
  EXPECT_GT(meta.phase(MigrationPhase::kTransfer).max(), 0)
      << "the transfer leg crosses an RPC and must take virtual time";

  // The client-side amplification counter saw the reacquire op exactly once.
  const RpcClientCounter& calls = w.library(0)->rpc_calls();
  EXPECT_EQ(calls.count(static_cast<size_t>(
                ProxyOpSlot(static_cast<uint32_t>(ProxyOp::kProxyReacquire)))),
            1u);
  MetastateLedger::Get().Reset();
}

// The library's client-side counter and the OS server's per-worker
// recorders are written independently (API layer vs worker fibers); at
// quiescence they must describe the same message stream.
TEST(Observatory, LibraryClientAndServerRpcAccountsReconcile) {
  World w(Config::kLibraryShm, MachineProfile::DecStation5000());
  bool done = false;

  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 6001});
    api->Listen(lfd, 2);
    for (int i = 0; i < 2; i++) {
      Result<int> cfd = api->Accept(lfd, nullptr);
      if (!cfd.ok()) {
        return;
      }
      uint8_t buf[512];
      while (true) {
        Result<size_t> n = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
        if (!n.ok() || *n == 0) {
          break;
        }
      }
      api->Close(*cfd);
    }
  });

  w.SpawnApp(0, "tx", [&] {
    LibraryNode* node = w.library_node(0);
    w.sim().current_thread()->SleepFor(Millis(5));
    for (int i = 0; i < 2; i++) {
      int fd = *node->CreateSocket(IpProto::kTcp);
      ASSERT_TRUE(node->Connect(fd, SockAddrIn{w.addr(1), 6001}).ok());
      uint8_t payload[256] = {0xab};
      ASSERT_TRUE(node->Send(fd, payload, sizeof(payload), nullptr).ok());
      node->Close(fd);
    }
    done = true;
  });

  w.sim().Run(Seconds(60));
  ASSERT_TRUE(done);

  const RpcClientCounter& client = w.library(0)->rpc_calls();
  RpcOpRecorder server = w.net_server(0)->MergedRpcStats();
  EXPECT_GT(client.total(), 0u);
  EXPECT_EQ(server.unknown(), 0u) << "server saw a message kind it could not map";
  EXPECT_EQ(client.total(), server.total_count() + server.unknown())
      << "client-side and server-side RPC accounts diverged";
  // Spot-check a per-op row both sides must agree on.
  size_t connect_slot =
      static_cast<size_t>(ProxyOpSlot(static_cast<uint32_t>(ProxyOp::kProxyConnect)));
  EXPECT_EQ(client.count(connect_slot), 2u);
  EXPECT_EQ(server.op(connect_slot).count, 2u);
  // Queue-wait/service split: every recorded op has both histograms filled.
  EXPECT_EQ(server.op(connect_slot).queue_wait.count(), 2u);
  EXPECT_EQ(server.op(connect_slot).service.count(), 2u);
  EXPECT_GT(server.op(connect_slot).service.total(), 0);
}

// Same reconciliation for the UX server placement: every socket call is an
// RPC, so the client counter equals the server's merged per-op total.
TEST(Observatory, UxClientAndServerRpcAccountsReconcile) {
  World w(Config::kServer, MachineProfile::DecStation5000());
  bool done = false;

  w.SpawnApp(1, "rx", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 6002});
    api->Listen(lfd, 1);
    Result<int> cfd = api->Accept(lfd, nullptr);
    if (!cfd.ok()) {
      return;
    }
    uint8_t buf[512];
    while (true) {
      Result<size_t> n = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
      if (!n.ok() || *n == 0) {
        break;
      }
    }
    api->Close(*cfd);
  });

  w.SpawnApp(0, "tx", [&] {
    SocketApi* api = w.api(0);
    w.sim().current_thread()->SleepFor(Millis(5));
    int fd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 6002}).ok());
    uint8_t payload[128] = {0x5a};
    ASSERT_TRUE(api->Send(fd, payload, sizeof(payload), nullptr).ok());
    api->Close(fd);
    done = true;
  });

  w.sim().Run(Seconds(60));
  ASSERT_TRUE(done);

  uint64_t client_total =
      w.ux_node(0)->rpc_calls().total() + w.ux_node(1)->rpc_calls().total();
  RpcOpRecorder server = w.ux_server(0)->MergedRpcStats();
  RpcOpRecorder server1 = w.ux_server(1)->MergedRpcStats();
  server.Merge(server1);
  EXPECT_GT(client_total, 0u);
  EXPECT_EQ(server.unknown(), 0u);
  EXPECT_EQ(client_total, server.total_count())
      << "UX client and server RPC accounts diverged";
  // The sender's connect is exactly one RPC on the op's own row.
  size_t connect_slot = static_cast<size_t>(
      ServOpSlot(static_cast<uint32_t>(ServOp::kConnect)));
  EXPECT_EQ(server.op(connect_slot).count, 1u);
}

}  // namespace
}  // namespace psd
