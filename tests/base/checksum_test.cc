#include <gtest/gtest.h>

#include <vector>

#include "src/base/checksum.h"
#include "src/base/codec.h"
#include "src/base/result.h"
#include "src/base/rng.h"

namespace psd {
namespace {

TEST(Checksum, RfcExample) {
  // RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2, checksum ~0xddf2.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(InternetChecksum(data, sizeof(data)), static_cast<uint16_t>(~0xddf2));
}

TEST(Checksum, VerifiesToZero) {
  // A buffer with its own checksum folded in verifies to 0.
  std::vector<uint8_t> data = {0x45, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00,
                               0x40, 0x11, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01,
                               0x0a, 0x00, 0x00, 0x02};
  uint16_t sum = InternetChecksum(data.data(), data.size());
  data[10] = static_cast<uint8_t>(sum >> 8);
  data[11] = static_cast<uint8_t>(sum);
  EXPECT_EQ(InternetChecksum(data.data(), data.size()), 0);
}

TEST(Checksum, EmptyIsAllOnes) {
  EXPECT_EQ(InternetChecksum(nullptr, 0), 0xffff);
}

TEST(Checksum, OddLength) {
  const uint8_t data[] = {0xab, 0xcd, 0xef};
  // Odd final byte is the high half of a padded word.
  ChecksumAccumulator acc;
  acc.Add(data, 3);
  uint64_t expect = 0xabcd + 0xef00;
  EXPECT_EQ(acc.Finish(), static_cast<uint16_t>(~((expect & 0xffff) + (expect >> 16))));
}

// Property: splitting a buffer at any point and accumulating the pieces
// gives the same checksum as one shot (mbuf chains depend on this).
TEST(Checksum, SplitInvariance) {
  Rng rng(42);
  for (int trial = 0; trial < 50; trial++) {
    size_t n = 1 + rng.Below(300);
    std::vector<uint8_t> data(n);
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.Next());
    }
    uint16_t whole = InternetChecksum(data.data(), n);
    size_t cut1 = rng.Below(n + 1);
    size_t cut2 = cut1 + rng.Below(n - cut1 + 1);
    ChecksumAccumulator acc;
    acc.Add(data.data(), cut1);
    acc.Add(data.data() + cut1, cut2 - cut1);
    acc.Add(data.data() + cut2, n - cut2);
    EXPECT_EQ(acc.Finish(), whole) << "n=" << n << " cuts " << cut1 << "," << cut2;
  }
}

TEST(Result, ValueAndError) {
  Result<int> ok(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  EXPECT_EQ(ok.error(), Err::kOk);

  Result<int> bad(Err::kConnRefused);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Err::kConnRefused);
  EXPECT_STREQ(ErrName(bad.error()), "ECONNREFUSED");
}

TEST(Result, VoidSpecialization) {
  Result<void> ok = OkResult();
  EXPECT_TRUE(ok.ok());
  Result<void> bad(Err::kTimedOut);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), Err::kTimedOut);
}

TEST(Codec, RoundTrip) {
  Encoder e;
  e.U8(7);
  e.U16(0xabcd);
  e.U32(0xdeadbeef);
  e.U64(0x0123456789abcdefULL);
  e.Bytes(std::vector<uint8_t>{1, 2, 3});
  std::vector<uint8_t> buf = e.Take();

  Decoder d(buf);
  EXPECT_EQ(d.U8(), 7);
  EXPECT_EQ(d.U16(), 0xabcd);
  EXPECT_EQ(d.U32(), 0xdeadbeefu);
  EXPECT_EQ(d.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(d.Bytes(), (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_FALSE(d.failed());
}

TEST(Codec, TruncationFails) {
  Encoder e;
  e.U32(5);
  std::vector<uint8_t> buf = e.Take();
  buf.pop_back();
  Decoder d(buf);
  d.U32();
  EXPECT_TRUE(d.failed());
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, RangeBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; i++) {
    int64_t v = rng.Range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

}  // namespace
}  // namespace psd
