// End-to-end tests for the application-protocol adapters (rpc.h, pswitch.h,
// dns.h) stacked on real sockets inside the simulator: the id bijection under
// pipelining, the malformed-request contract, the in-band switch's residual
// handoff and exactly-once property, the refused-switch fallback, and the
// DNS query/retry loop. The in-kernel placement keeps these fast; every
// placement gets the same stacks through the torture traffic mixes.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/proto/dns.h"
#include "src/proto/framing.h"
#include "src/proto/pswitch.h"
#include "src/proto/rpc.h"
#include "src/testbed/world.h"

namespace psd {
namespace {

TEST(ProtoStack, RpcPipelinedBijectionOverSockets) {
  World w(Config::kInKernel, MachineProfile::DecStation5000());
  constexpr int kCalls = 20;
  uint64_t served = 0;
  RpcClientOutcome out;
  ProtoCounters server_c, client_c;

  w.SpawnApp(1, "rpcsrv", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 6100}).ok());
    ASSERT_TRUE(api->Listen(lfd, 1).ok());
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    SockByteStream bs(api, *cfd);
    PfxStream pfx(&bs, 4096, &server_c);
    Result<uint64_t> r = RpcServeLoop(&pfx, 512, &server_c);
    ASSERT_TRUE(r.ok()) << ErrName(r.error());
    served = *r;
    api->Close(*cfd);
    api->Close(lfd);
  });
  w.SpawnApp(0, "rpccli", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(5));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 6100}).ok());
    SockByteStream bs(api, fd);
    PfxStream pfx(&bs, 4096, &client_c);
    out = RpcRunPipelined(&pfx, 42, /*conn_tag=*/1, kCalls, /*window=*/5, 0, 300, &client_c);
    api->Close(fd);
  });
  w.sim().Run(Seconds(60));

  EXPECT_TRUE(out.completed) << ErrName(out.error);
  EXPECT_EQ(out.sent, static_cast<uint64_t>(kCalls));
  EXPECT_EQ(out.acked, static_cast<uint64_t>(kCalls));
  EXPECT_EQ(out.id_mismatches, 0u);
  EXPECT_EQ(out.bad_payloads, 0u);
  EXPECT_EQ(served, static_cast<uint64_t>(kCalls));
  EXPECT_EQ(client_c.rpc_calls, static_cast<uint64_t>(kCalls));
  EXPECT_EQ(server_c.rpc_replies, static_cast<uint64_t>(kCalls));
  EXPECT_EQ(client_c.frame_errors + server_c.frame_errors, 0u);
}

TEST(ProtoStack, RpcMalformedRequestIsProto) {
  World w(Config::kInKernel, MachineProfile::DecStation5000());
  Err server_err = Err::kOk;

  w.SpawnApp(1, "rpcsrv", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 6101}).ok());
    ASSERT_TRUE(api->Listen(lfd, 1).ok());
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    SockByteStream bs(api, *cfd);
    PfxStream pfx(&bs, 4096);
    Result<uint64_t> r = RpcServeLoop(&pfx, 512, nullptr);
    ASSERT_FALSE(r.ok());
    server_err = r.error();
    api->Close(*cfd);
    api->Close(lfd);
  });
  w.SpawnApp(0, "badcli", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(5));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 6101}).ok());
    SockByteStream bs(api, fd);
    PfxStream pfx(&bs, 4096);
    // Well-framed but not an RPC request: wrong type byte.
    uint8_t msg[kRpcHeaderLen] = {1, 0, 0, 0, 0, 0, 0, 0, 7};
    ASSERT_TRUE(pfx.SendMsg(msg, sizeof(msg)).ok());
    api->Close(fd);
  });
  w.sim().Run(Seconds(60));

  EXPECT_EQ(server_err, Err::kProto);
}

TEST(ProtoStack, SwitchHandsOverExactlyOnce) {
  World w(Config::kInKernel, MachineProfile::DecStation5000());
  ProtoCounters client_c, server_c;
  bool client_done = false;

  w.SpawnApp(1, "swsrv", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 6102}).ok());
    ASSERT_TRUE(api->Listen(lfd, 1).ok());
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    SockByteStream bs(api, *cfd);
    CrlfStream crlf(&bs, 128, &server_c);
    uint8_t line[128];
    Result<size_t> n = crlf.RecvMsg(line, sizeof(line));
    ASSERT_TRUE(n.ok());
    ASSERT_EQ(*n, std::strlen(kSwitchRequest));
    ASSERT_EQ(0, std::memcmp(line, kSwitchRequest, *n));
    Result<std::unique_ptr<PfxStream>> pfx = AcceptSwitch(&crlf, &bs, 4096, &server_c);
    ASSERT_TRUE(pfx.ok());
    // The predecessor is dead the moment the successor exists.
    EXPECT_TRUE(crlf.detached());
    EXPECT_EQ(crlf.RecvMsg(line, sizeof(line)).error(), Err::kProto);
    Result<uint64_t> served = RpcServeLoop(pfx->get(), 512, &server_c);
    ASSERT_TRUE(served.ok()) << ErrName(served.error());
    EXPECT_EQ(*served, 6u);
    api->Close(*cfd);
    api->Close(lfd);
  });
  w.SpawnApp(0, "swcli", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(5));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 6102}).ok());
    SockByteStream bs(api, fd);
    CrlfStream crlf(&bs, 128, &client_c);
    Result<std::unique_ptr<PfxStream>> pfx = RequestSwitch(&crlf, &bs, 4096, &client_c);
    ASSERT_TRUE(pfx.ok()) << ErrName(pfx.error());
    RpcClientOutcome out =
        RpcRunPipelined(pfx->get(), 7, /*conn_tag=*/2, 6, /*window=*/3, 0, 200, &client_c);
    EXPECT_TRUE(out.completed) << ErrName(out.error);
    // A second switch attempt on the same connection must fail loudly, not
    // renegotiate: the crlf adapter is detached.
    Result<std::unique_ptr<PfxStream>> again = RequestSwitch(&crlf, &bs, 4096, &client_c);
    EXPECT_FALSE(again.ok());
    EXPECT_EQ(again.error(), Err::kProto);
    api->Close(fd);
    client_done = true;
  });
  w.sim().Run(Seconds(60));

  EXPECT_TRUE(client_done);
  EXPECT_EQ(client_c.switch_completed, 1u);
  EXPECT_EQ(server_c.switch_completed, 1u);
  EXPECT_EQ(client_c.switch_refused, 0u);
}

TEST(ProtoStack, SwitchResidualCarriesPipelinedBytes) {
  // The server acknowledges and immediately pipelines a pfx frame behind the
  // "OK" in a single send, so the client's line parser over-reads into the
  // successor's bytes. The handoff must deliver them byte-perfectly.
  World w(Config::kInKernel, MachineProfile::DecStation5000());
  bool client_done = false;

  w.SpawnApp(1, "swsrv", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 6103}).ok());
    ASSERT_TRUE(api->Listen(lfd, 1).ok());
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    SockByteStream bs(api, *cfd);
    CrlfStream crlf(&bs, 128);
    uint8_t line[128];
    ASSERT_TRUE(crlf.RecvMsg(line, sizeof(line)).ok());
    // "OK\r\n" + pfx("after") in one write: the client cannot avoid
    // buffering past the handshake line.
    const uint8_t wire[] = {'O', 'K', '\r', '\n', 0, 0, 0, 5, 'a', 'f', 't', 'e', 'r'};
    ASSERT_TRUE(WriteFull(&bs, wire, sizeof(wire)).ok());
    api->Close(*cfd);
    api->Close(lfd);
  });
  w.SpawnApp(0, "swcli", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(5));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 6103}).ok());
    SockByteStream bs(api, fd);
    CrlfStream crlf(&bs, 128);
    // Give the server's combined write time to land in the socket buffer as
    // one contiguous blob before the line parser reads.
    w.sim().current_thread()->SleepFor(Millis(50));
    Result<std::unique_ptr<PfxStream>> pfx = RequestSwitch(&crlf, &bs, 4096, nullptr);
    ASSERT_TRUE(pfx.ok()) << ErrName(pfx.error());
    uint8_t out[64];
    Result<size_t> n = (*pfx)->RecvMsg(out, sizeof(out));
    ASSERT_TRUE(n.ok()) << ErrName(n.error());
    EXPECT_EQ(*n, 5u);
    EXPECT_EQ(0, std::memcmp(out, "after", 5));
    EXPECT_EQ((*pfx)->RecvMsg(out, sizeof(out)).error(), Err::kEof);
    api->Close(fd);
    client_done = true;
  });
  w.sim().Run(Seconds(60));

  EXPECT_TRUE(client_done);
}

TEST(ProtoStack, SwitchRefusedKeepsSpeakingLines) {
  World w(Config::kInKernel, MachineProfile::DecStation5000());
  ProtoCounters client_c;
  bool client_done = false;

  w.SpawnApp(1, "swsrv", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    ASSERT_TRUE(api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), 6104}).ok());
    ASSERT_TRUE(api->Listen(lfd, 1).ok());
    Result<int> cfd = api->Accept(lfd, nullptr);
    ASSERT_TRUE(cfd.ok());
    SockByteStream bs(api, *cfd);
    CrlfStream crlf(&bs, 128);
    uint8_t line[128];
    ASSERT_TRUE(crlf.RecvMsg(line, sizeof(line)).ok());
    ASSERT_TRUE(crlf.SendMsg(reinterpret_cast<const uint8_t*>("NO"), 2).ok());
    // Still a line server afterwards: echo one more line.
    Result<size_t> n = crlf.RecvMsg(line, sizeof(line));
    ASSERT_TRUE(n.ok());
    ASSERT_TRUE(crlf.SendMsg(line, *n).ok());
    api->Close(*cfd);
    api->Close(lfd);
  });
  w.SpawnApp(0, "swcli", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    w.sim().current_thread()->SleepFor(Millis(5));
    ASSERT_TRUE(api->Connect(fd, SockAddrIn{w.addr(1), 6104}).ok());
    SockByteStream bs(api, fd);
    CrlfStream crlf(&bs, 128, &client_c);
    Result<std::unique_ptr<PfxStream>> pfx = RequestSwitch(&crlf, &bs, 4096, &client_c);
    EXPECT_FALSE(pfx.ok());
    // Refusal leaves the line protocol fully usable.
    EXPECT_FALSE(crlf.detached());
    EXPECT_FALSE(crlf.poisoned());
    ASSERT_TRUE(crlf.SendMsg(reinterpret_cast<const uint8_t*>("still-lines"), 11).ok());
    uint8_t echo[64];
    Result<size_t> n = crlf.RecvMsg(echo, sizeof(echo));
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(*n, 11u);
    EXPECT_EQ(0, std::memcmp(echo, "still-lines", 11));
    api->Close(fd);
    client_done = true;
  });
  w.sim().Run(Seconds(60));

  EXPECT_TRUE(client_done);
  EXPECT_EQ(client_c.switch_refused, 1u);
  EXPECT_EQ(client_c.switch_completed, 0u);
}

TEST(ProtoStack, DnsResolvesOnCleanWire) {
  World w(Config::kInKernel, MachineProfile::DecStation5000());
  ProtoCounters client_c, server_c;
  bool stop = false;
  uint64_t answered = 0;
  int resolved = 0;

  w.SpawnApp(1, "dnssrv", [&] {
    SocketApi* api = w.api(1);
    int fd = *api->CreateSocket(IpProto::kUdp);
    ASSERT_TRUE(api->Bind(fd, SockAddrIn{Ipv4Addr::Any(), 6105}).ok());
    SockDgram sock(api, fd);
    answered = DnsServeLoop(&sock, &stop, Millis(20), &server_c);
    api->Close(fd);
  });
  w.SpawnApp(0, "dnscli", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kUdp);
    ASSERT_TRUE(api->Bind(fd, SockAddrIn{Ipv4Addr::Any(), 6106}).ok());
    SockDgram sock(api, fd);
    SockAddrIn server{w.addr(1), 6105};
    w.sim().current_thread()->SleepFor(Millis(10));
    for (uint64_t id = 1; id <= 4; id++) {
      DnsOutcome o = DnsResolve(&sock, server, id, 99, 48, 3, Millis(200), &client_c);
      resolved += o.resolved ? 1 : 0;
      EXPECT_GE(o.transmissions, 1);
    }
    stop = true;
    api->Close(fd);
  });
  w.sim().Run(Seconds(60));

  EXPECT_EQ(resolved, 4);
  EXPECT_EQ(answered, 4u);
  EXPECT_EQ(client_c.dns_answers, 4u);
  EXPECT_EQ(client_c.dns_failures, 0u);
  EXPECT_EQ(client_c.dns_bad, 0u);
}

}  // namespace
}  // namespace psd
