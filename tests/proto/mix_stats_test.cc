// The traffic mixes surface their adapter counters through the unified
// StatsRegistry (proto.client.* / proto.server.*), the same interface every
// other subsystem exports through — so psdstat-style snapshot consumers see
// application-protocol activity next to the wire and stack gauges.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/obs/stats.h"
#include "src/testbed/traffic_mix.h"
#include "src/testbed/world.h"

namespace psd {
namespace {

TEST(MixStats, ExportsClientAndServerAdapterCounters) {
  const MixSpec* spec = FindTrafficMix("rpc");
  ASSERT_NE(spec, nullptr);

  TrafficMix mix(*spec, /*seed=*/7);
  StatsRegistry reg;
  {
    World w(Config::kInKernel, MachineProfile::DecStation5000());
    int apps_done = 0;
    mix.Launch(&w, &apps_done);
    w.sim().Run(Seconds(120));
    ASSERT_EQ(apps_done, mix.apps_total());

    mix.ExportStats(&reg);
    EXPECT_EQ(reg.duplicates_rejected(), 0u);

    std::map<std::string, uint64_t> snap;
    for (const StatsRegistry::Entry& e : reg.Snapshot()) {
      snap[e.name] = e.value;
    }
    // Both ends registered, under distinct prefixes.
    ASSERT_TRUE(snap.count("proto.client.rpc_calls"));
    ASSERT_TRUE(snap.count("proto.server.rpc_replies"));
    // Gauges read the live mix counters: 3 conns x 24 calls, every call
    // answered (invariant 6 holds on a clean wire).
    const uint64_t want_calls = static_cast<uint64_t>(spec->rpc_conns) *
                                static_cast<uint64_t>(spec->rpc_calls);
    EXPECT_EQ(snap["proto.client.rpc_calls"], want_calls);
    EXPECT_EQ(snap["proto.client.rpc_replies"], want_calls);
    EXPECT_EQ(snap["proto.server.rpc_replies"], want_calls);
    EXPECT_EQ(snap["proto.client.frame_errors"], 0u);
    EXPECT_EQ(snap["proto.server.frame_errors"], 0u);
    EXPECT_GT(snap["proto.client.bytes_out"], 0u);
    // The mix outlives the registry consumer; gauges stay readable here.
  }
  reg.Reset();
}

}  // namespace
}  // namespace psd
