// Seeded property/fuzz tests for the framing parsers (pfx + crlf), run over
// an in-memory ByteStream that delivers data in adversarially small chunks.
// The property under test is the adapter error contract (src/proto/adapter.h):
// parsers either produce exactly the sent messages or fail with the right Err
// — and never read out of bounds, no matter how the bytes are segmented or
// what garbage arrives. CI runs this binary under ASan, which is what turns
// "never OOB" from a comment into a checked property.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "src/base/rng.h"
#include "src/proto/framing.h"

namespace psd {
namespace {

// A ByteStream over a fixed byte string that honors the short-read contract
// maximally: every Read returns a seeded-random chunk size (or exactly 1 byte
// in one_byte mode), then 0 forever at EOF. Writes append to `written`.
class ChunkedMemStream : public ByteStream {
 public:
  ChunkedMemStream(std::vector<uint8_t> data, uint64_t seed, bool one_byte = false)
      : data_(std::move(data)), rng_(Rng::Stream(seed, 77)), one_byte_(one_byte) {}

  Result<size_t> Read(uint8_t* out, size_t len) override {
    if (pos_ >= data_.size()) {
      return static_cast<size_t>(0);  // EOF
    }
    size_t left = data_.size() - pos_;
    size_t chunk = one_byte_ ? 1 : 1 + rng_.Below(64);
    size_t n = std::min(len, std::min(chunk, left));
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return n;
  }
  Result<size_t> Write(const uint8_t* data, size_t len) override {
    // Short writes too: WriteFull must loop.
    size_t n = one_byte_ ? 1 : std::min(len, static_cast<size_t>(1 + rng_.Below(64)));
    written.insert(written.end(), data, data + n);
    return n;
  }

  std::vector<uint8_t> written;

 private:
  std::vector<uint8_t> data_;
  size_t pos_ = 0;
  Rng rng_;
  bool one_byte_;
};

std::vector<uint8_t> PfxEncode(const std::vector<std::vector<uint8_t>>& msgs) {
  std::vector<uint8_t> wire;
  for (const auto& m : msgs) {
    uint32_t len = static_cast<uint32_t>(m.size());
    wire.push_back(static_cast<uint8_t>(len >> 24));
    wire.push_back(static_cast<uint8_t>(len >> 16));
    wire.push_back(static_cast<uint8_t>(len >> 8));
    wire.push_back(static_cast<uint8_t>(len));
    wire.insert(wire.end(), m.begin(), m.end());
  }
  return wire;
}

// --- pfx properties ---

TEST(FramingFuzz, PfxRoundtripRandomChunks) {
  for (uint64_t seed = 1; seed <= 20; seed++) {
    Rng gen = Rng::Stream(seed, 1);
    std::vector<std::vector<uint8_t>> msgs;
    for (int i = 0; i < 40; i++) {
      std::vector<uint8_t> m(gen.Below(600));  // 0-length messages included
      for (uint8_t& b : m) {
        b = static_cast<uint8_t>(gen.Next());
      }
      msgs.push_back(std::move(m));
    }
    for (bool one_byte : {false, true}) {
      ChunkedMemStream mem(PfxEncode(msgs), seed, one_byte);
      ProtoCounters c;
      PfxStream pfx(&mem, 1024, &c);
      std::vector<uint8_t> out(1024);
      for (const auto& want : msgs) {
        Result<size_t> n = pfx.RecvMsg(out.data(), out.size());
        ASSERT_TRUE(n.ok()) << ErrName(n.error());
        ASSERT_EQ(*n, want.size());
        ASSERT_TRUE(std::equal(want.begin(), want.end(), out.begin()));
      }
      EXPECT_EQ(pfx.RecvMsg(out.data(), out.size()).error(), Err::kEof);
      EXPECT_EQ(c.msgs_in, msgs.size());
      EXPECT_EQ(c.frame_errors, 0u);
    }
  }
}

TEST(FramingFuzz, PfxOversizeHeaderPoisons) {
  // A length prefix beyond the bound — including the all-ones header that
  // would overflow naive `header + len` arithmetic — must fail before any
  // payload is consumed, and poison the adapter.
  for (uint32_t hdr : {static_cast<uint32_t>(1025), static_cast<uint32_t>(1) << 31,
                       static_cast<uint32_t>(0xFFFFFFFF)}) {
    std::vector<uint8_t> wire = {static_cast<uint8_t>(hdr >> 24), static_cast<uint8_t>(hdr >> 16),
                                 static_cast<uint8_t>(hdr >> 8), static_cast<uint8_t>(hdr)};
    wire.resize(wire.size() + 64, 0xAB);  // junk "payload" that must never be read
    ChunkedMemStream mem(std::move(wire), 3);
    ProtoCounters c;
    PfxStream pfx(&mem, 1024, &c);
    uint8_t out[2048];
    EXPECT_EQ(pfx.RecvMsg(out, sizeof(out)).error(), Err::kProto);
    EXPECT_TRUE(pfx.poisoned());
    EXPECT_EQ(c.oversize, 1u);
    EXPECT_EQ(c.frame_errors, 1u);
    // Poisoned means poisoned: every later call fails without reading.
    EXPECT_EQ(pfx.RecvMsg(out, sizeof(out)).error(), Err::kProto);
    EXPECT_EQ(pfx.SendMsg(out, 1).error(), Err::kProto);
  }
}

TEST(FramingFuzz, PfxExactBoundIsLegal) {
  std::vector<std::vector<uint8_t>> msgs = {std::vector<uint8_t>(1024, 0x5C)};
  ChunkedMemStream mem(PfxEncode(msgs), 4);
  PfxStream pfx(&mem, 1024);
  std::vector<uint8_t> out(1024);
  Result<size_t> n = pfx.RecvMsg(out.data(), out.size());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1024u);
}

TEST(FramingFuzz, PfxTruncationIsProto) {
  // EOF mid-header and EOF mid-payload are both framing violations, at every
  // possible cut point.
  std::vector<std::vector<uint8_t>> msgs = {std::vector<uint8_t>(32, 0x11)};
  std::vector<uint8_t> full = PfxEncode(msgs);
  for (size_t cut = 1; cut < full.size(); cut++) {
    std::vector<uint8_t> wire(full.begin(), full.begin() + static_cast<ptrdiff_t>(cut));
    ChunkedMemStream mem(std::move(wire), cut, /*one_byte=*/true);
    ProtoCounters c;
    PfxStream pfx(&mem, 1024, &c);
    uint8_t out[64];
    EXPECT_EQ(pfx.RecvMsg(out, sizeof(out)).error(), Err::kProto) << "cut=" << cut;
    EXPECT_EQ(c.truncated, 1u);
  }
}

TEST(FramingFuzz, PfxMsgSizeDoesNotConsume) {
  std::vector<std::vector<uint8_t>> msgs = {std::vector<uint8_t>(100, 0x7E)};
  ChunkedMemStream mem(PfxEncode(msgs), 5);
  ProtoCounters c;
  PfxStream pfx(&mem, 1024, &c);
  uint8_t small[10];
  EXPECT_EQ(pfx.RecvMsg(small, sizeof(small)).error(), Err::kMsgSize);
  EXPECT_FALSE(pfx.poisoned());
  EXPECT_EQ(c.frame_errors, 0u);
  // The message is still there, intact, for a properly sized retry.
  uint8_t big[128];
  Result<size_t> n = pfx.RecvMsg(big, sizeof(big));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 100u);
  EXPECT_EQ(big[0], 0x7E);
}

// --- crlf properties ---

TEST(FramingFuzz, CrlfRoundtripSplitTerminators) {
  // 1-byte chunk mode guarantees every CRLF arrives split across reads.
  for (uint64_t seed = 1; seed <= 20; seed++) {
    Rng gen = Rng::Stream(seed, 2);
    std::vector<std::vector<uint8_t>> lines;
    std::vector<uint8_t> wire;
    for (int i = 0; i < 30; i++) {
      std::vector<uint8_t> l(gen.Below(120));  // empty lines included
      for (uint8_t& b : l) {
        b = static_cast<uint8_t>(' ' + gen.Below(95));  // printable: never CR/LF
      }
      wire.insert(wire.end(), l.begin(), l.end());
      wire.push_back('\r');
      wire.push_back('\n');
      lines.push_back(std::move(l));
    }
    for (bool one_byte : {false, true}) {
      ChunkedMemStream mem(wire, seed, one_byte);
      ProtoCounters c;
      CrlfStream crlf(&mem, 256, &c);
      std::vector<uint8_t> out(256);
      for (const auto& want : lines) {
        Result<size_t> n = crlf.RecvMsg(out.data(), out.size());
        ASSERT_TRUE(n.ok()) << ErrName(n.error());
        ASSERT_EQ(*n, want.size());
        ASSERT_TRUE(std::equal(want.begin(), want.end(), out.begin()));
      }
      EXPECT_EQ(crlf.RecvMsg(out.data(), out.size()).error(), Err::kEof);
      EXPECT_EQ(c.msgs_in, lines.size());
      EXPECT_EQ(c.resyncs, 0u);
    }
  }
}

TEST(FramingFuzz, CrlfBareCrAndLfAreData) {
  std::vector<uint8_t> wire = {'a', '\r', 'b', '\n', 'c', '\r', '\n'};
  ChunkedMemStream mem(wire, 6, /*one_byte=*/true);
  CrlfStream crlf(&mem, 64);
  uint8_t out[64];
  Result<size_t> n = crlf.RecvMsg(out, sizeof(out));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 5u);
  EXPECT_EQ(0, std::memcmp(out, "a\rb\nc", 5));
}

TEST(FramingFuzz, CrlfGarbageBeforeSyncResyncsExactlyOnce) {
  // One garbage burst longer than the line bound, then clean lines. In
  // resync mode the parser must charge exactly one resync per burst — no
  // matter how the burst is segmented — and then parse every real line.
  for (uint64_t seed = 1; seed <= 10; seed++) {
    Rng gen = Rng::Stream(seed, 3);
    std::vector<uint8_t> wire(80 + gen.Below(200), 'x');  // max_line=64, so overlong
    wire.push_back('\r');
    wire.push_back('\n');
    const char* good = "hello";
    wire.insert(wire.end(), good, good + 5);
    wire.push_back('\r');
    wire.push_back('\n');
    for (bool one_byte : {false, true}) {
      ChunkedMemStream mem(wire, seed, one_byte);
      ProtoCounters c;
      CrlfStream crlf(&mem, 64, &c, /*resync=*/true);
      uint8_t out[64];
      Result<size_t> n = crlf.RecvMsg(out, sizeof(out));
      ASSERT_TRUE(n.ok()) << ErrName(n.error());
      EXPECT_EQ(*n, 5u);
      EXPECT_EQ(0, std::memcmp(out, "hello", 5));
      EXPECT_EQ(c.resyncs, 1u);
      EXPECT_EQ(c.frame_errors, 0u);
    }
  }
}

TEST(FramingFuzz, CrlfOverlongWithoutResyncPoisons) {
  std::vector<uint8_t> wire(200, 'y');
  wire.push_back('\r');
  wire.push_back('\n');
  ChunkedMemStream mem(std::move(wire), 7);
  ProtoCounters c;
  CrlfStream crlf(&mem, 64, &c, /*resync=*/false);
  uint8_t out[256];
  EXPECT_EQ(crlf.RecvMsg(out, sizeof(out)).error(), Err::kProto);
  EXPECT_TRUE(crlf.poisoned());
  EXPECT_EQ(c.frame_errors, 1u);
}

TEST(FramingFuzz, CrlfUnterminatedGarbageAtEofIsProto) {
  // Resync mode can skip garbage, but garbage that never terminates before
  // EOF is still a hard failure — resync-or-fail, never hang or accept.
  std::vector<uint8_t> wire(300, 'z');
  ChunkedMemStream mem(std::move(wire), 8, /*one_byte=*/true);
  ProtoCounters c;
  CrlfStream crlf(&mem, 64, &c, /*resync=*/true);
  uint8_t out[64];
  EXPECT_EQ(crlf.RecvMsg(out, sizeof(out)).error(), Err::kProto);
  EXPECT_EQ(c.truncated, 1u);
}

// --- byte soup: neither parser may crash, hang, or read OOB on arbitrary
// input; every call ends in a message, a clean EOF, or a contract error ---

TEST(FramingFuzz, ByteSoupNeverOutOfBounds) {
  for (uint64_t seed = 1; seed <= 60; seed++) {
    Rng gen = Rng::Stream(seed, 4);
    std::vector<uint8_t> soup(gen.Below(4096));
    for (uint8_t& b : soup) {
      // Bias toward small values so plausible-looking pfx headers and CR/LF
      // bytes actually occur.
      b = static_cast<uint8_t>(gen.Below(gen.Below(2) != 0 ? 32 : 256));
    }
    for (int mode = 0; mode < 4; mode++) {
      ChunkedMemStream mem(soup, seed, /*one_byte=*/(mode & 1) != 0);
      ProtoCounters c;
      std::unique_ptr<MsgStream> m;
      if (mode < 2) {
        m = std::make_unique<PfxStream>(&mem, 512, &c);
      } else {
        m = std::make_unique<CrlfStream>(&mem, 512, &c, /*resync=*/(seed % 2) == 0);
      }
      std::vector<uint8_t> out(512);
      for (int calls = 0; calls < 10000; calls++) {
        Result<size_t> n = m->RecvMsg(out.data(), out.size());
        if (!n.ok()) {
          EXPECT_TRUE(n.error() == Err::kEof || n.error() == Err::kProto ||
                      n.error() == Err::kMsgSize)
              << ErrName(n.error());
          break;
        }
      }
    }
  }
}

// --- residual handoff (the switch building block) ---

TEST(FramingFuzz, ResidualTakeDetachesAndSeedParses) {
  // A crlf parser that buffered pfx frames behind the last line hands them
  // to a successor byte-perfectly, and the detached predecessor is dead.
  std::vector<uint8_t> wire = {'o', 'k', '\r', '\n'};
  std::vector<std::vector<uint8_t>> msgs = {{1, 2, 3}, {}, {9, 8, 7, 6}};
  std::vector<uint8_t> pfx_bytes = PfxEncode(msgs);
  wire.insert(wire.end(), pfx_bytes.begin(), pfx_bytes.end());

  ChunkedMemStream mem(std::move(wire), 9);
  CrlfStream crlf(&mem, 64);
  uint8_t out[64];
  Result<size_t> n = crlf.RecvMsg(out, sizeof(out));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);

  // Force the line parser to over-read: ask for another line. There is none
  // (the rest is binary), so drain what it buffered via a failed parse? No —
  // the residual is whatever FillTo already pulled past the line. Take it
  // directly; the successor re-reads the rest from the base stream.
  std::vector<uint8_t> residual;
  crlf.TakeResidual(&residual);
  EXPECT_TRUE(crlf.detached());
  EXPECT_EQ(crlf.RecvMsg(out, sizeof(out)).error(), Err::kProto);
  EXPECT_EQ(crlf.SendMsg(out, 1).error(), Err::kProto);

  PfxStream pfx(&mem, 64);
  pfx.SeedResidual(residual);
  for (const auto& want : msgs) {
    Result<size_t> r = pfx.RecvMsg(out, sizeof(out));
    ASSERT_TRUE(r.ok()) << ErrName(r.error());
    ASSERT_EQ(*r, want.size());
    ASSERT_TRUE(std::equal(want.begin(), want.end(), out));
  }
  EXPECT_EQ(pfx.RecvMsg(out, sizeof(out)).error(), Err::kEof);
}

// --- send paths honor short writes ---

TEST(FramingFuzz, SendPathsLoopOverShortWrites) {
  ChunkedMemStream mem({}, 10, /*one_byte=*/true);  // 1-byte writes
  PfxStream pfx(&mem, 1024);
  std::vector<uint8_t> msg(300, 0x42);
  ASSERT_TRUE(pfx.SendMsg(msg.data(), msg.size()).ok());
  ASSERT_EQ(mem.written.size(), 304u);
  EXPECT_EQ(mem.written[0], 0u);
  EXPECT_EQ(mem.written[2], 1u);  // 300 = 0x012C
  EXPECT_EQ(mem.written[3], 0x2C);

  ChunkedMemStream mem2({}, 11, /*one_byte=*/true);
  CrlfStream crlf(&mem2, 1024);
  ASSERT_TRUE(crlf.SendMsg(reinterpret_cast<const uint8_t*>("hi"), 2).ok());
  ASSERT_EQ(mem2.written.size(), 4u);
  EXPECT_EQ(0, std::memcmp(mem2.written.data(), "hi\r\n", 4));
  // CR/LF in a line payload is unframeable, not silently mangled.
  EXPECT_EQ(crlf.SendMsg(reinterpret_cast<const uint8_t*>("a\nb"), 3).error(), Err::kInval);
}

}  // namespace
}  // namespace psd
