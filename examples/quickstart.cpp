// Quickstart: two simulated hosts on a 10 Mb/s Ethernet, both running the
// paper's decomposed protocol service (protocol library in the application
// + OS server for control operations). A TCP hello and a UDP datagram
// exchange, with a look at the machinery: the connection is established by
// the OS server and then *migrated* into each application's protocol
// library, after which send/receive never involve the server.
#include <cstdio>
#include <string>

#include "src/api/bsd.h"
#include "src/testbed/world.h"

using namespace psd;

int main() {
  // Two DECstation-class hosts, library placement with the integrated
  // shared-memory packet filter (the paper's best configuration).
  World w(Config::kLibraryShmIpf, MachineProfile::DecStation5000());

  w.SpawnApp(1, "server", [&] {
    BsdApi bsd(w.api(1));  // the familiar BSD calls, via the proxy

    // --- TCP echo server ---
    int lfd = *bsd.socket(IpProto::kTcp);
    bsd.bind(lfd, SockAddrIn{Ipv4Addr::Any(), 7777});
    bsd.listen(lfd, 5);
    SockAddrIn peer;
    int cfd = *bsd.accept(lfd, &peer);  // session migrates to us here
    std::printf("[server] accepted connection from %s\n", peer.ToString().c_str());

    uint8_t buf[256];
    size_t n = *bsd.read(cfd, buf, sizeof(buf));
    std::printf("[server] got %zu bytes: \"%.*s\"\n", n, static_cast<int>(n), buf);
    bsd.write(cfd, buf, n);  // echo — entirely inside the protocol library
    bsd.close(cfd);          // clean close: session returns to the OS server
    bsd.close(lfd);

    // --- UDP sink ---
    int ufd = *bsd.socket(IpProto::kUdp);
    bsd.bind(ufd, SockAddrIn{Ipv4Addr::Any(), 9999});
    SockAddrIn from;
    n = *bsd.recvfrom(ufd, buf, sizeof(buf), &from);
    std::printf("[server] datagram from %s: \"%.*s\"\n", from.ToString().c_str(),
                static_cast<int>(n), buf);
    bsd.close(ufd);
  });

  w.SpawnApp(0, "client", [&] {
    BsdApi bsd(w.api(0));
    w.sim().current_thread()->SleepFor(Millis(10));

    int fd = *bsd.socket(IpProto::kTcp);
    Result<void> r = bsd.connect(fd, SockAddrIn{w.addr(1), 7777});
    if (!r.ok()) {
      std::printf("[client] connect failed: %s\n", ErrName(r.error()));
      return;
    }
    std::printf("[client] connected (handshake by OS server, session migrated to app)\n");
    const std::string msg = "hello, user-level TCP!";
    bsd.send(fd, reinterpret_cast<const uint8_t*>(msg.data()), msg.size());
    uint8_t buf[256];
    size_t n = *bsd.recv(fd, buf, sizeof(buf));
    std::printf("[client] echo: \"%.*s\" (round trip at %0.2f ms virtual time)\n",
                static_cast<int>(n), buf, ToMillis(w.sim().Now()));
    bsd.close(fd);

    int ufd = *bsd.socket(IpProto::kUdp);
    const std::string dgram = "and user-level UDP";
    bsd.sendto(ufd, reinterpret_cast<const uint8_t*>(dgram.data()), dgram.size(),
               SockAddrIn{w.addr(1), 9999});
    bsd.close(ufd);
  });

  w.sim().Run(Seconds(10));

  std::printf("\n--- decomposition at work ---\n");
  for (int i = 0; i < 2; i++) {
    std::printf("host %d: OS server migrated %lu sessions out, %lu back in;"
                " ARP cache %lu hits / %lu misses\n",
                i, w.net_server(i)->migrations_out(), w.net_server(i)->migrations_in(),
                w.library(i)->arp_cache_hits(), w.library(i)->arp_cache_misses());
  }
  return 0;
}
