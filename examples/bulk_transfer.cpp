// FTP-style bulk transfer comparing the classic copying socket interface
// with the paper's NEWAPI shared-buffer interface (§4.2): the sender hands
// refcounted buffers to the stack (no copy into the send queue; TCP holds
// references until acknowledgement) and the receiver takes ownership of
// mbuf chains out of the socket (no copy-out). The content is checksummed
// end to end to show the zero-copy paths deliver the same bytes.
#include <cstdio>
#include <memory>
#include <vector>

#include "src/testbed/world.h"

using namespace psd;

namespace {

constexpr size_t kFileSize = 2 * 1024 * 1024;
constexpr uint16_t kPort = 2100;

uint64_t Fnv1a(const uint8_t* p, size_t n, uint64_t h = 1469598103934665603ULL) {
  for (size_t i = 0; i < n; i++) {
    h = (h ^ p[i]) * 1099511628211ULL;
  }
  return h;
}

struct RunStats {
  double seconds = 0;
  uint64_t checksum = 0;
};

RunStats Transfer(bool newapi) {
  World w(Config::kLibraryShmIpf, MachineProfile::DecStation5000());
  RunStats stats;
  SimTime t0 = 0, t1 = 0;

  w.SpawnApp(1, "ftp-server", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->SetOpt(lfd, SockOpt::kRcvBuf, 48 * 1024);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), kPort});
    api->Listen(lfd, 1);
    Result<int> cfd = api->Accept(lfd, nullptr);
    if (!cfd.ok()) {
      return;
    }
    uint64_t h = 1469598103934665603ULL;
    size_t got = 0;
    while (got < kFileSize) {
      if (newapi) {
        // Zero-copy receive: take ownership of the stack's chain.
        Result<Chain> c = api->RecvChain(*cfd, 64 * 1024, nullptr);
        if (!c.ok() || c->len() == 0) {
          break;
        }
        std::vector<uint8_t> v = c->ToVector();  // checksum walk
        h = Fnv1a(v.data(), v.size(), h);
        got += c->len();
      } else {
        uint8_t buf[8192];
        Result<size_t> n = api->Recv(*cfd, buf, sizeof(buf), nullptr, false);
        if (!n.ok() || *n == 0) {
          break;
        }
        h = Fnv1a(buf, *n, h);
        got += *n;
      }
    }
    t1 = w.sim().Now();
    stats.checksum = h;
    api->Close(*cfd);
    api->Close(lfd);
  });

  w.SpawnApp(0, "ftp-client", [&] {
    SocketApi* api = w.api(0);
    int fd = *api->CreateSocket(IpProto::kTcp);
    api->SetOpt(fd, SockOpt::kSndBuf, 48 * 1024);
    w.sim().current_thread()->SleepFor(Millis(5));
    if (!api->Connect(fd, SockAddrIn{w.addr(1), kPort}).ok()) {
      return;
    }
    // The "file": deterministic pseudo-random content.
    auto file = std::make_shared<std::vector<uint8_t>>(kFileSize);
    uint32_t x = 0x12345;
    for (size_t i = 0; i < kFileSize; i++) {
      x = x * 1103515245 + 12345;
      (*file)[i] = static_cast<uint8_t>(x >> 16);
    }
    t0 = w.sim().Now();
    size_t sent = 0;
    while (sent < kFileSize) {
      size_t chunk = std::min<size_t>(8192, kFileSize - sent);
      Result<size_t> n = newapi ? api->SendShared(fd, file, sent, chunk, nullptr)
                                : api->Send(fd, file->data() + sent, chunk, nullptr);
      if (!n.ok()) {
        break;
      }
      sent += *n;
    }
    api->Close(fd);
  });

  w.sim().Run(Seconds(120));
  stats.seconds = ToSeconds(t1 - t0);
  return stats;
}

}  // namespace

int main() {
  std::printf("bulk transfer of a %zu KB file, Library-SHM-IPF placement\n\n", kFileSize / 1024);
  RunStats classic = Transfer(false);
  RunStats shared = Transfer(true);
  std::printf("classic sockets: %7.1f KB/s  (fnv1a %016lx)\n",
              kFileSize / 1024.0 / classic.seconds, classic.checksum);
  std::printf("NEWAPI sockets:  %7.1f KB/s  (fnv1a %016lx)\n",
              kFileSize / 1024.0 / shared.seconds, shared.checksum);
  std::printf("\ncontent checksums %s; NEWAPI speedup %.1f%%\n",
              classic.checksum == shared.checksum ? "MATCH" : "DIFFER (bug!)",
              (classic.seconds / shared.seconds - 1) * 100);
  return classic.checksum == shared.checksum ? 0 : 1;
}
