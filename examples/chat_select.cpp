// A select()-driven chat server: one server multiplexes several client
// connections with select, the paper's "cooperative interface" (§3.2).
// In the library placement the listening socket is server-managed while
// accepted sessions are application-managed, so this exercises exactly the
// mixed-descriptor select the paper describes: the library checks its own
// sockets and cooperates with the OS server (proxy_select / proxy_status)
// for the rest.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/api/bsd.h"
#include "src/testbed/world.h"

using namespace psd;

namespace {
constexpr uint16_t kChatPort = 6667;
constexpr int kClients = 3;
}  // namespace

int main() {
  World w(Config::kLibraryShmIpf, MachineProfile::DecStation5000(), /*hosts=*/2);
  int messages_relayed = 0;

  w.SpawnApp(1, "chat-server", [&] {
    SocketApi* api = w.api(1);
    int lfd = *api->CreateSocket(IpProto::kTcp);
    api->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), kChatPort});
    api->Listen(lfd, 8);

    std::vector<int> clients;
    int done_clients = 0;
    while (done_clients < kClients) {
      SelectFds fds;
      fds.read.push_back(lfd);  // listener
      for (int c : clients) {
        fds.read.push_back(c);
      }
      Result<int> n = api->Select(&fds, Seconds(30));
      if (!n.ok() || *n == 0) {
        break;
      }
      if (fds.read_ready[0]) {
        SockAddrIn peer;
        Result<int> c = api->Accept(lfd, &peer);
        if (c.ok()) {
          clients.push_back(*c);
          std::printf("[server %6.1fms] + client %s joins (%zu online)\n",
                      ToMillis(w.sim().Now()), peer.ToString().c_str(), clients.size());
        }
      }
      for (size_t i = 1; i < fds.read.size(); i++) {
        if (!fds.read_ready[i]) {
          continue;
        }
        int cfd = fds.read[i];
        uint8_t buf[512];
        Result<size_t> got = api->Recv(cfd, buf, sizeof(buf), nullptr, false);
        if (!got.ok() || *got == 0) {
          api->Close(cfd);
          clients.erase(std::remove(clients.begin(), clients.end(), cfd), clients.end());
          done_clients++;
          std::printf("[server %6.1fms] - client left (%zu online)\n", ToMillis(w.sim().Now()),
                      clients.size());
          continue;
        }
        // Relay to everyone else.
        for (int other : clients) {
          if (other != cfd) {
            api->Send(other, buf, *got, nullptr);
            messages_relayed++;
          }
        }
      }
    }
    api->Close(lfd);
  });

  // Clients all run on host 0 as separate processes (each gets its own
  // protocol library sharing host 0's OS server).
  for (int id = 0; id < kClients; id++) {
    ProtocolLibrary* lib =
        id == 0 ? w.library(0) : w.AddLibrary(0, "h0/chat" + std::to_string(id));
    auto* node = new LibraryNode(lib);  // leaked at end of simulation: example scope
    w.SpawnApp(0, "chat-client-" + std::to_string(id), [&, id, node] {
      SocketApi* api = node;
      SimThread* self = w.sim().current_thread();
      self->SleepFor(Millis(20 + 40 * id));
      int fd = *api->CreateSocket(IpProto::kTcp);
      if (!api->Connect(fd, SockAddrIn{w.addr(1), kChatPort}).ok()) {
        return;
      }
      std::string msg = "hi from client " + std::to_string(id);
      api->Send(fd, reinterpret_cast<const uint8_t*>(msg.data()), msg.size(), nullptr);
      // Listen for relayed chatter for a while.
      SimTime stop = w.sim().Now() + Millis(400);
      while (w.sim().Now() < stop) {
        SelectFds fds;
        fds.read.push_back(fd);
        Result<int> n = api->Select(&fds, Millis(100));
        if (n.ok() && *n > 0 && fds.read_ready[0]) {
          uint8_t buf[512];
          Result<size_t> got = api->Recv(fd, buf, sizeof(buf), nullptr, false);
          if (!got.ok() || *got == 0) {
            break;
          }
          std::printf("[client %d %6.1fms] heard: \"%.*s\"\n", id, ToMillis(w.sim().Now()),
                      static_cast<int>(*got), buf);
        }
      }
      api->Close(fd);
    });
  }

  w.sim().Run(Seconds(20));
  std::printf("\nserver relayed %d messages across %d clients via cooperative select\n",
              messages_relayed, kClients);
  return 0;
}
