// A forking accept server, the hard case for application-level protocols
// (paper §3.1): fork requires parent and child to share each descriptor's
// I/O stream, which is impossible if the session lives in either address
// space. Per Table 1, the proxy returns all sessions to the OS server
// before fork (proxy_return); afterwards both processes reach their
// sessions through the server.
#include <cstdio>
#include <string>

#include "src/testbed/world.h"

using namespace psd;

namespace {
constexpr uint16_t kPort = 2323;
}

int main() {
  World w(Config::kLibraryShmIpf, MachineProfile::DecStation5000());
  // Owned at main scope: the child process node must outlive the parent
  // thread (in a real fork the child is its own process).
  std::unique_ptr<LibraryNode> child_node;

  w.SpawnApp(1, "forking-server", [&] {
    LibraryNode* parent = w.library_node(1);
    int lfd = *parent->CreateSocket(IpProto::kTcp);
    parent->Bind(lfd, SockAddrIn{Ipv4Addr::Any(), kPort});
    parent->Listen(lfd, 4);

    // Accept one connection; the session migrates into this process.
    SockAddrIn peer;
    int cfd = *parent->Accept(lfd, &peer);
    std::printf("[parent] accepted %s; session is app-managed: %s\n", peer.ToString().c_str(),
                parent->IsAppManaged(cfd) ? "yes" : "no");

    // fork(): all sessions are first returned to the operating system.
    ProtocolLibrary* child_lib = w.AddLibrary(1, "h1/child");
    Result<std::unique_ptr<LibraryNode>> forked = parent->Fork(child_lib);
    if (!forked.ok()) {
      std::printf("[parent] fork failed: %s\n", ErrName(forked.error()));
      return;
    }
    child_node = std::move(*forked);
    LibraryNode* child = child_node.get();
    std::printf("[parent] forked; session now app-managed: %s (returned to OS server)\n",
                parent->IsAppManaged(cfd) ? "yes" : "no");

    // The child serves the connection; both processes share the stream
    // through the server, exactly like BSD fork semantics.
    w.SpawnApp(1, "child-proc", [&, child, cfd] {
      uint8_t buf[256];
      Result<size_t> n = child->Recv(cfd, buf, sizeof(buf), nullptr, false);
      if (n.ok() && *n > 0) {
        std::string reply = "child says: got \"" + std::string(buf, buf + *n) + "\"";
        child->Send(cfd, reinterpret_cast<const uint8_t*>(reply.data()), reply.size(), nullptr);
        std::printf("[child ] served the request over the server-managed session\n");
      }
      child->Close(cfd);
    });

    // Parent closes its copy of the descriptor (refcounted server-side) and
    // keeps accepting; we stop after this one for the example.
    parent->Close(cfd);
    parent->Close(lfd);
  });

  w.SpawnApp(0, "client", [&] {
    SocketApi* api = w.api(0);
    w.sim().current_thread()->SleepFor(Millis(10));
    int fd = *api->CreateSocket(IpProto::kTcp);
    if (!api->Connect(fd, SockAddrIn{w.addr(1), kPort}).ok()) {
      return;
    }
    const std::string msg = "ping across fork";
    api->Send(fd, reinterpret_cast<const uint8_t*>(msg.data()), msg.size(), nullptr);
    uint8_t buf[256];
    Result<size_t> n = api->Recv(fd, buf, sizeof(buf), nullptr, false);
    if (n.ok()) {
      std::printf("[client] reply: \"%.*s\"\n", static_cast<int>(*n), buf);
    }
    api->Close(fd);
  });

  w.sim().Run(Seconds(20));
  std::printf("\nOS server: %lu sessions migrated out, %lu returned (fork + closes)\n",
              w.net_server(1)->migrations_out(), w.net_server(1)->migrations_in());
  return 0;
}
